// Crash-simulation suite: kill the writer at arbitrary points (by truncating
// the log at arbitrary byte offsets, the on-disk image a mid-batch crash
// leaves), recover, and verify committed-prefix semantics; plus
// recover-then-continue round trips, checkpoint + tail replay equivalence
// against full-log replay, parallel-vs-serial replay equivalence, and
// checkpoint log truncation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/database.h"
#include "core/recovery.h"
#include "log/log_segment.h"

namespace mvstore {
namespace {

namespace fs = std::filesystem;

struct Row {
  uint64_t key;
  uint64_t value;
  uint64_t extra;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

void DefineSchema(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 1024, true});
  db.CreateTable(def);
}

/// Full visible contents of table 0, keyed by primary key.
std::map<uint64_t, std::vector<uint8_t>> DumpTable(Database& db) {
  std::map<uint64_t, std::vector<uint8_t>> out;
  const uint32_t payload_size = db.PayloadSize(0);
  Status s = db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
    out.clear();
    return db.ScanTable(t, 0, [&](const void* p) {
      const auto* bytes = static_cast<const uint8_t*>(p);
      out[db.PrimaryKeyOfPayload(0, p)] =
          std::vector<uint8_t>(bytes, bytes + payload_size);
      return true;
    });
  });
  EXPECT_TRUE(s.ok());
  return out;
}

Status InsertRow(Database& db, uint64_t key, uint64_t value) {
  return db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
    Row row{key, value, key ^ 0xABCDull};
    return db.Insert(t, 0, &row);
  });
}

class CrashRecoveryTest : public ::testing::TestWithParam<Scheme> {
 protected:
  CrashRecoveryTest() {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s/crash_%d_%d",
                  ::testing::TempDir().c_str(), static_cast<int>(GetParam()),
                  ::getpid());
    prefix_ = buf;
    Cleanup();
  }
  ~CrashRecoveryTest() override { Cleanup(); }

  void Cleanup() {
    std::remove((prefix_ + ".log").c_str());
    std::remove((prefix_ + ".ckpt").c_str());
    std::remove((prefix_ + ".ckpt.tmp").c_str());
    for (const auto& seg : logseg::ListSegments(prefix_)) {
      std::remove(seg.path.c_str());
    }
  }

  /// Single-file log, synchronous commits (every committed transaction is
  /// on disk before the next starts — the deterministic crash model).
  DatabaseOptions FileOptions() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kSync;
    opts.log_path = prefix_ + ".log";
    return opts;
  }

  /// Segmented log with tiny segments (forces rotation) + checkpoint path.
  DatabaseOptions SegmentedOptions(uint64_t segment_bytes = 2048) {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kSync;
    opts.log_path = prefix_;
    opts.log_segment_bytes = segment_bytes;
    opts.checkpoint_path = prefix_ + ".ckpt";
    return opts;
  }

  std::string prefix_;
};

// --- torn tail ---------------------------------------------------------------

TEST_P(CrashRecoveryTest, TornTailRecoversCommittedPrefix) {
  constexpr uint64_t kTxns = 40;
  {
    Database db(FileOptions());
    DefineSchema(db);
    for (uint64_t k = 0; k < kTxns; ++k) {
      ASSERT_TRUE(InsertRow(db, k, k * 10).ok());
    }
  }
  const std::string log = prefix_ + ".log";
  const uint64_t full_size = static_cast<uint64_t>(fs::file_size(log));
  ASSERT_GT(full_size, 0u);

  // Crash images: cut the log at arbitrary offsets, including mid-record.
  for (uint64_t cut : {full_size - 1, full_size - 13, full_size / 2,
                       full_size / 3, uint64_t{7}}) {
    const std::string torn = log + ".torn";
    fs::copy_file(log, torn, fs::copy_options::overwrite_existing);
    fs::resize_file(torn, cut);
    // A cut can land exactly on a record boundary, leaving a clean log.
    std::vector<ParsedLogRecord> probe;
    const bool cut_mid_record = !ParseAllRecords(ReadLogFile(torn), &probe);

    DatabaseOptions fresh;
    fresh.scheme = GetParam();
    fresh.log_mode = LogMode::kDisabled;
    Database db(fresh);
    DefineSchema(db);
    ASSERT_TRUE(RecoverFromLogFile(db, torn).ok()) << "cut=" << cut;

    // Committed-prefix semantics: with kSync + a single-threaded writer the
    // log holds records in commit order, so the recovered keys must be
    // exactly {0..K-1} for some K, each with its committed value.
    auto contents = DumpTable(db);
    uint64_t expect = 0;
    for (const auto& [key, payload] : contents) {
      EXPECT_EQ(key, expect) << "cut=" << cut;
      Row row{};
      std::memcpy(&row, payload.data(), sizeof(Row));
      EXPECT_EQ(row.value, key * 10);
      EXPECT_EQ(row.extra, key ^ 0xABCDull);
      ++expect;
    }
    EXPECT_LE(contents.size(), kTxns);
    // The torn bytes were truncated off the file (continued logs must stay
    // parseable), and the event was counted.
    EXPECT_LE(fs::file_size(torn), cut) << "cut=" << cut;
    EXPECT_EQ(db.stats().Get(Stat::kRecoveryTornTails),
              cut_mid_record ? 1u : 0u)
        << "cut=" << cut;
    std::remove(torn.c_str());
  }
}

// --- recover-then-continue ---------------------------------------------------

TEST_P(CrashRecoveryTest, ReopenPreservesExistingLog) {
  // Before the append-mode fix, the second construction opened the log with
  // "wb" and silently destroyed phase A.
  {
    Database db(FileOptions());
    DefineSchema(db);
    for (uint64_t k = 0; k < 10; ++k) ASSERT_TRUE(InsertRow(db, k, k).ok());
  }
  {
    Status status;
    RecoveryReport report;
    auto db = Database::Open(FileOptions(), DefineSchema, &status, &report);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(report.records_replayed, 10u);
    EXPECT_EQ(DumpTable(*db).size(), 10u);
    for (uint64_t k = 10; k < 20; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
  }
  {
    Status status;
    RecoveryReport report;
    auto db = Database::Open(FileOptions(), DefineSchema, &status, &report);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(report.records_replayed, 20u);
    auto contents = DumpTable(*db);
    ASSERT_EQ(contents.size(), 20u);
    for (uint64_t k = 0; k < 20; ++k) EXPECT_EQ(contents.count(k), 1u);
  }
}

TEST_P(CrashRecoveryTest, SegmentedRoundTripWithRotationAndTornTail) {
  std::map<uint64_t, uint64_t> model;
  {
    auto db = Database::Open(SegmentedOptions(), DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 60; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k * 3).ok());
      model[k] = k * 3;
    }
  }
  ASSERT_GT(logseg::ListSegments(prefix_).size(), 1u) << "no rotation";

  // Tear the newest segment mid-record.
  auto segments = logseg::ListSegments(prefix_);
  const auto& tail = segments.back();
  ASSERT_GT(tail.size, logseg::kHeaderSize + 5);
  fs::resize_file(tail.path, tail.size - 5);

  uint64_t prefix_max = 0;
  {
    Status status;
    RecoveryReport report;
    auto db =
        Database::Open(SegmentedOptions(), DefineSchema, &status, &report);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_GE(report.torn_tails, 1u);
    EXPECT_GE(report.torn_bytes_dropped, 1u);
    auto contents = DumpTable(*db);
    // Committed prefix: contiguous keys from 0, shorter than the full run.
    ASSERT_FALSE(contents.empty());
    uint64_t expect = 0;
    for (const auto& [key, payload] : contents) {
      EXPECT_EQ(key, expect);
      Row row{};
      std::memcpy(&row, payload.data(), sizeof(Row));
      EXPECT_EQ(row.value, model[key]);
      ++expect;
    }
    EXPECT_LT(contents.size(), 60u);
    prefix_max = expect;  // first missing key
    // Continue: the truncated tail must accept appends cleanly.
    for (uint64_t k = prefix_max; k < prefix_max + 20; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k * 3).ok());
    }
  }
  {
    auto db = Database::Open(SegmentedOptions(), DefineSchema);
    ASSERT_NE(db, nullptr);
    auto contents = DumpTable(*db);
    EXPECT_EQ(contents.size(), prefix_max + 20);
  }
}

// --- checkpoint + tail -------------------------------------------------------

TEST_P(CrashRecoveryTest, CheckpointPlusTailEqualsFullReplay) {
  std::mt19937_64 rng(42);
  {
    auto db = Database::Open(SegmentedOptions(), DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
    // Checkpoint WITHOUT truncation so the full log survives for the
    // equivalence check below.
    Checkpointer checkpointer(
        *db, Checkpointer::Options{prefix_ + ".ckpt", /*truncate_log=*/false});
    CheckpointStats stats;
    ASSERT_TRUE(checkpointer.Take(&stats).ok());
    EXPECT_EQ(stats.rows, 50u);
    EXPECT_GT(stats.snapshot_ts, 0u);
    // Post-checkpoint tail: updates, deletes, inserts.
    for (int i = 0; i < 120; ++i) {
      uint64_t k = rng() % 50;
      ASSERT_TRUE(db->RunTransaction(IsolationLevel::kReadCommitted,
                                     [&](Txn* t) {
                                       return db->Update(t, 0, 0, k,
                                                         [&](void* p) {
                                                           static_cast<Row*>(p)
                                                               ->value += 7;
                                                         });
                                     })
                      .ok());
    }
    for (uint64_t k = 0; k < 50; k += 10) {
      ASSERT_TRUE(db->RunTransaction(IsolationLevel::kReadCommitted,
                                     [&](Txn* t) { return db->Delete(t, 0, 0, k); })
                      .ok());
    }
    for (uint64_t k = 50; k < 70; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k * 11).ok());
    }
  }

  // Recovery A: checkpoint + tail.
  std::map<uint64_t, std::vector<uint8_t>> via_checkpoint;
  RecoveryReport report_a;
  {
    Status status;
    auto db =
        Database::Open(SegmentedOptions(), DefineSchema, &status, &report_a);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_TRUE(report_a.checkpoint_loaded);
    EXPECT_EQ(report_a.checkpoint_rows, 50u);
    via_checkpoint = DumpTable(*db);
  }
  // Recovery B: ignore the checkpoint, replay the whole log.
  std::map<uint64_t, std::vector<uint8_t>> via_full_log;
  RecoveryReport report_b;
  {
    DatabaseOptions opts = SegmentedOptions();
    opts.checkpoint_path.clear();
    Status status;
    auto db = Database::Open(opts, DefineSchema, &status, &report_b);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_FALSE(report_b.checkpoint_loaded);
    EXPECT_EQ(report_b.records_skipped, 0u);
    via_full_log = DumpTable(*db);
  }
  // Checkpoint recovery must have done strictly less log work: segments
  // below covered_seq are skipped unread, and any covered records in the
  // tail segments are skipped by timestamp.
  EXPECT_LT(report_a.records_parsed, report_b.records_parsed);
  EXPECT_EQ(report_a.records_replayed + report_a.records_skipped,
            report_a.records_parsed);
  // Byte-identical table contents.
  EXPECT_EQ(via_checkpoint, via_full_log);
  EXPECT_EQ(via_checkpoint.size(), 65u);  // 50 - 5 deleted + 20 inserted
}

TEST_P(CrashRecoveryTest, CheckpointUnderLoadMatchesFullReplay) {
  // Checkpoints run against live traffic: the MV image must be an exact
  // snapshot mid-stream, the 1V image a fuzzy one that tolerant tail replay
  // converges. Equivalence against full-log replay proves both.
  {
    auto db = Database::Open(SegmentedOptions(/*segment_bytes=*/4096),
                             DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (uint32_t w = 0; w < 3; ++w) {
      writers.emplace_back([&, w] {
        std::mt19937_64 rng(100 + w);
        uint64_t next_insert = 1000 + w * 10000;
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t dice = rng() % 10;
          if (dice < 6) {
            uint64_t k = rng() % 64;
            db->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
              Status s = db->Update(t, 0, 0, k, [&](void* p) {
                static_cast<Row*>(p)->value += w + 1;
              });
              return s.IsNotFound() ? Status::OK() : s;  // deleted race
            });
          } else if (dice < 8) {
            InsertRow(*db, next_insert++, dice);
          } else {
            uint64_t k = rng() % 64;
            db->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
              Status s = db->Delete(t, 0, 0, k);
              return s.IsNotFound() ? Status::OK() : s;
            });
          }
        }
      });
    }
    // Several checkpoints mid-traffic, truncation off so the full log
    // survives for the equivalence recovery below.
    Checkpointer checkpointer(
        *db, Checkpointer::Options{prefix_ + ".ckpt", /*truncate_log=*/false});
    for (int i = 0; i < 3; ++i) {
      CheckpointStats stats;
      ASSERT_TRUE(checkpointer.Take(&stats).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : writers) t.join();
  }

  std::map<uint64_t, std::vector<uint8_t>> via_checkpoint;
  {
    Status status;
    RecoveryReport report;
    auto db =
        Database::Open(SegmentedOptions(4096), DefineSchema, &status, &report);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_TRUE(report.checkpoint_loaded);
    via_checkpoint = DumpTable(*db);
  }
  std::map<uint64_t, std::vector<uint8_t>> via_full_log;
  {
    DatabaseOptions opts = SegmentedOptions(4096);
    opts.checkpoint_path.clear();
    Status status;
    auto db = Database::Open(opts, DefineSchema, &status);
    ASSERT_NE(db, nullptr) << status.ToString();
    via_full_log = DumpTable(*db);
  }
  EXPECT_EQ(via_checkpoint, via_full_log);
}

TEST_P(CrashRecoveryTest, ConcurrentCheckpointsSerializeAndStayValid) {
  {
    auto db = Database::Open(SegmentedOptions(/*segment_bytes=*/1024),
                             DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 40; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
    // Racing checkpoint passes (periodic + manual, say) must serialize;
    // interleaved writers would publish a checksum-corrupt file.
    std::vector<std::thread> checkpointers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 3; ++t) {
      checkpointers.emplace_back([&] {
        for (int i = 0; i < 4; ++i) {
          if (!db->Checkpoint().ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& t : checkpointers) t.join();
    EXPECT_EQ(failures.load(), 0);
    CheckpointInfo info;
    EXPECT_TRUE(InspectCheckpoint(prefix_ + ".ckpt", &info).ok());
  }
  Status status;
  RecoveryReport report;
  auto db = Database::Open(SegmentedOptions(1024), DefineSchema, &status,
                           &report);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(DumpTable(*db).size(), 40u);
}

TEST_P(CrashRecoveryTest, CheckpointTruncationReclaimsSegments) {
  auto db = Database::Open(SegmentedOptions(/*segment_bytes=*/1024),
                           DefineSchema);
  ASSERT_NE(db, nullptr);
  for (uint64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(InsertRow(*db, k, k).ok());
  }
  const auto before = logseg::ListSegments(prefix_);
  uint64_t bytes_before = 0;
  for (const auto& seg : before) bytes_before += seg.size;
  ASSERT_GT(before.size(), 2u);

  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_GE(db->stats().Get(Stat::kCheckpointsTaken), 1u);

  const auto after = logseg::ListSegments(prefix_);
  uint64_t bytes_after = 0;
  for (const auto& seg : after) bytes_after += seg.size;
  EXPECT_LT(after.size(), before.size());
  EXPECT_LT(bytes_after, bytes_before);
  EXPECT_GE(db->stats().Get(Stat::kLogSegmentsDeleted),
            before.size() - after.size());

  // Post-truncation writes + recovery still see everything.
  for (uint64_t k = 150; k < 170; ++k) {
    ASSERT_TRUE(InsertRow(*db, k, k).ok());
  }
  db.reset();
  Status status;
  RecoveryReport report;
  auto recovered = Database::Open(SegmentedOptions(/*segment_bytes=*/1024),
                                  DefineSchema, &status, &report);
  ASSERT_NE(recovered, nullptr) << status.ToString();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(DumpTable(*recovered).size(), 170u);
}

TEST_P(CrashRecoveryTest, MissingSegmentOrCheckpointRefusesPartialRecovery) {
  {
    auto db = Database::Open(SegmentedOptions(/*segment_bytes=*/1024),
                             DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 150; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());  // truncates: segments now start > 1
    for (uint64_t k = 150; k < 200; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
  }
  auto segments = logseg::ListSegments(prefix_);
  ASSERT_GT(segments.front().seq, 1u);
  ASSERT_GT(segments.size(), 2u);

  // Checkpoint gone: the surviving segments no longer account for the
  // truncated prefix; recovering just them would silently lose rows.
  {
    const std::string ckpt = prefix_ + ".ckpt";
    const std::string hidden = ckpt + ".hidden";
    fs::rename(ckpt, hidden);
    Status status;
    auto db = Database::Open(SegmentedOptions(1024), DefineSchema, &status);
    EXPECT_EQ(db, nullptr);
    EXPECT_FALSE(status.ok());
    fs::rename(hidden, ckpt);
  }
  // A deleted middle segment is a sequence gap: same refusal.
  {
    const auto& middle = segments[segments.size() / 2];
    const std::string hidden = middle.path + ".hidden";
    fs::rename(middle.path, hidden);
    Status status;
    auto db = Database::Open(SegmentedOptions(1024), DefineSchema, &status);
    EXPECT_EQ(db, nullptr);
    EXPECT_FALSE(status.ok());
    fs::rename(hidden, middle.path);
  }
  // Intact again: full recovery.
  {
    Status status;
    auto db = Database::Open(SegmentedOptions(1024), DefineSchema, &status);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(DumpTable(*db).size(), 200u);
  }
  // Every tail segment lost while the checkpoint survives: the sink
  // recreates segment 1 at construction, which must NOT satisfy a
  // checkpoint covering through a later segment — the post-checkpoint tail
  // is gone and recovery has to say so.
  {
    std::vector<std::pair<std::string, std::string>> hidden;
    for (const auto& seg : logseg::ListSegments(prefix_)) {
      hidden.emplace_back(seg.path, seg.path + ".hidden");
      fs::rename(seg.path, hidden.back().second);
    }
    Status status;
    auto db = Database::Open(SegmentedOptions(1024), DefineSchema, &status);
    EXPECT_EQ(db, nullptr);
    EXPECT_FALSE(status.ok());
    for (const auto& seg : logseg::ListSegments(prefix_)) {
      std::remove(seg.path.c_str());  // the recreated empty segment 1
    }
    for (const auto& [orig, hid] : hidden) fs::rename(hid, orig);
    auto restored = Database::Open(SegmentedOptions(1024), DefineSchema);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(DumpTable(*restored).size(), 200u);
  }
}

// A checkpoint that did not originate locally (log-shipping bootstrap: the
// file arrives from the leader ahead of its covering segments) carries a
// covered_seq claim the local directory cannot back. Recovery must
// revalidate that claim against the LOCAL segment set and refuse while the
// tables are still empty — trusting the shipped header would silently drop
// everything the leader logged after the checkpoint.
TEST_P(CrashRecoveryTest, ShippedCheckpointWithoutCoveringSegmentsRefused) {
  {
    auto db = Database::Open(SegmentedOptions(/*segment_bytes=*/1024),
                             DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 150; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    for (uint64_t k = 150; k < 200; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k).ok());
    }
  }
  const auto segments = logseg::ListSegments(prefix_);
  ASSERT_GT(segments.front().seq, 1u);

  const std::string shipped_prefix = prefix_ + "_shipped";
  DatabaseOptions shipped = SegmentedOptions(1024);
  shipped.log_path = shipped_prefix;
  shipped.checkpoint_path = shipped_prefix + ".ckpt";
  fs::copy_file(prefix_ + ".ckpt", shipped.checkpoint_path,
                fs::copy_options::overwrite_existing);

  // Checkpoint present, segments absent: covered_seq > 1 with no covering
  // run on disk. Refused before a single row loads.
  {
    Status status;
    auto db = Database::Open(shipped, DefineSchema, &status);
    EXPECT_EQ(db, nullptr);
    EXPECT_FALSE(status.ok());
  }
  // The sink auto-creates segment 1 on the failed open; a fresh low-numbered
  // segment still does not satisfy a checkpoint covering a later one.
  {
    Status status;
    auto db = Database::Open(shipped, DefineSchema, &status);
    EXPECT_EQ(db, nullptr);
    EXPECT_FALSE(status.ok());
  }
  // Ship the covering segments too (discarding the recreated segment 1):
  // now the claim is backed and recovery yields the full table.
  for (const auto& seg : logseg::ListSegments(shipped_prefix)) {
    std::remove(seg.path.c_str());
  }
  const std::string base_name = prefix_.substr(prefix_.find_last_of('/') + 1);
  for (const auto& seg : segments) {
    const std::string name = seg.path.substr(seg.path.find_last_of('/') + 1);
    const std::string dest = shipped_prefix + name.substr(base_name.size());
    fs::copy_file(seg.path, dest, fs::copy_options::overwrite_existing);
  }
  {
    Status status;
    auto db = Database::Open(shipped, DefineSchema, &status);
    ASSERT_NE(db, nullptr) << status.ToString();
    EXPECT_EQ(DumpTable(*db).size(), 200u);
  }
  std::remove(shipped.checkpoint_path.c_str());
  for (const auto& seg : logseg::ListSegments(shipped_prefix)) {
    std::remove(seg.path.c_str());
  }
}

TEST_P(CrashRecoveryTest, ListSegmentsAcceptsWidenedSequenceNumbers) {
  // SegmentPath zero-pads to 8 digits but widens beyond 10^8 rotations;
  // the lister must see everything the writer can emit.
  const std::string narrow = logseg::SegmentPath(prefix_, 7);
  const std::string wide = prefix_ + ".123456789.seg";  // 9 digits
  for (const std::string& path : {narrow, wide}) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
  }
  auto segments = logseg::ListSegments(prefix_);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments.front().seq, 7u);
  EXPECT_EQ(segments.back().seq, 123456789u);
  std::remove(narrow.c_str());
  std::remove(wide.c_str());
}

TEST_P(CrashRecoveryTest, CheckpointOnlyOpenLoadsWithoutLog) {
  {
    auto db = Database::Open(SegmentedOptions(), DefineSchema);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 0; k < 30; ++k) {
      ASSERT_TRUE(InsertRow(*db, k, k * 2).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  // Read-only analytical open: no log, logging disabled, checkpoint only.
  DatabaseOptions opts;
  opts.scheme = GetParam();
  opts.log_mode = LogMode::kDisabled;
  opts.checkpoint_path = prefix_ + ".ckpt";
  Status status;
  RecoveryReport report;
  auto db = Database::Open(opts, DefineSchema, &status, &report);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.checkpoint_rows, 30u);
  EXPECT_EQ(DumpTable(*db).size(), 30u);
}

// --- parallel replay ---------------------------------------------------------

TEST_P(CrashRecoveryTest, ParallelReplayMatchesSerial) {
  std::mt19937_64 rng(7);
  {
    Database db(FileOptions());
    DefineSchema(db);
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(InsertRow(db, k, k).ok());
    }
    for (int i = 0; i < 800; ++i) {
      uint64_t k = rng() % 200;
      ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      return db.Update(t, 0, 0, k, [&](void* p) {
                                        auto* row = static_cast<Row*>(p);
                                        row->value = row->value * 31 + 1;
                                      });
                                    })
                      .ok());
    }
    for (uint64_t k = 0; k < 200; k += 9) {
      ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) { return db.Delete(t, 0, 0, k); })
                      .ok());
    }
  }

  auto recover = [&](uint32_t threads) {
    DatabaseOptions fresh;
    fresh.scheme = GetParam();
    fresh.log_mode = LogMode::kDisabled;
    Database db(fresh);
    DefineSchema(db);
    RecoveryOptions options;
    options.log_path = prefix_ + ".log";
    options.threads = threads;
    RecoveryReport report;
    EXPECT_TRUE(RecoverDatabase(db, options, &report).ok())
        << "threads=" << threads;
    return DumpTable(db);
  };
  auto serial = recover(1);
  auto parallel = recover(4);
  EXPECT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial, parallel);  // byte-identical contents
}

// --- interleaved timestamp blocks --------------------------------------------

/// Commits drawing end timestamps from interleaved per-thread blocks
/// (txn/timestamp.h) leave a log whose timestamps have gaps: a block that
/// falls behind the drawn-timestamp ceiling is abandoned, so its remainder
/// is never emitted. A crash image of such a log must (a) replay to
/// byte-identical contents serially and in parallel, and (b) leave the
/// recovered clock strictly above the replayed maximum -- a post-recovery
/// commit reusing a gap or a replayed timestamp would corrupt the replay
/// order of the *next* recovery.
TEST_P(CrashRecoveryTest, InterleavedTimestampBlocksReplayDeterministically) {
  constexpr uint32_t kThreads = 3;
  constexpr uint32_t kRounds = 40;  // committed transactions per thread
  constexpr uint64_t kShared = 8;
  {
    DatabaseOptions opts = FileOptions();
    opts.ts_block_size = 4;  // small blocks: frequent carves, visible gaps
    Database db(opts);
    DefineSchema(db);
    for (uint64_t k = 0; k < kShared; ++k) {
      ASSERT_TRUE(InsertRow(db, k, 1).ok());
    }
    // A turnstile alternates commit order across threads deterministically:
    // every thread's next draw finds another thread's draw above it, so
    // every commit abandons its block remainder and carves a fresh one --
    // the maximally interleaved schedule, independent of the scheduler.
    std::atomic<uint32_t> turn{0};
    std::vector<std::thread> writers;
    for (uint32_t w = 0; w < kThreads; ++w) {
      writers.emplace_back([&, w] {
        for (uint32_t round = 0; round < kRounds; ++round) {
          while (turn.load(std::memory_order_acquire) % kThreads != w) {
            std::this_thread::yield();
          }
          const uint64_t shared_key = (round + w) % kShared;
          const uint64_t own_key = 1000 + w * 1000 + round;
          Status s = db.RunTransaction(
              IsolationLevel::kReadCommitted, [&](Txn* t) {
                // Order-sensitive accumulation on a shared row: replay in
                // anything but end-timestamp order changes the bytes.
                Status u = db.Update(t, 0, 0, shared_key, [&](void* p) {
                  auto* row = static_cast<Row*>(p);
                  row->value = row->value * 31 + w + 1;
                });
                if (!u.ok()) return u;
                Row row{own_key, w, own_key ^ 0xABCDull};
                return db.Insert(t, 0, &row);
              });
          EXPECT_TRUE(s.ok());
          turn.fetch_add(1, std::memory_order_release);
        }
      });
    }
    for (auto& t : writers) t.join();
  }

  // Crash: tear the tail mid-record.
  const std::string log = prefix_ + ".log";
  const uint64_t full_size = static_cast<uint64_t>(fs::file_size(log));
  fs::resize_file(log, full_size - 9);

  std::vector<ParsedLogRecord> records;
  (void)ParseAllRecords(ReadLogFile(log), &records);  // false: torn tail
  ASSERT_GT(records.size(), kShared);
  if (GetParam() != Scheme::kSingleVersion) {
    // The phenomenon under test actually occurred: abandoned block
    // remainders left gaps, so the timestamp range exceeds the draw count.
    std::vector<Timestamp> stamps;
    for (const auto& r : records) stamps.push_back(r.end_ts);
    std::sort(stamps.begin(), stamps.end());
    EXPECT_GT(stamps.back() - stamps.front() + 1, stamps.size());
  }

  auto recover = [&](uint32_t threads, RecoveryReport* report) {
    DatabaseOptions fresh;
    fresh.scheme = GetParam();
    fresh.log_mode = LogMode::kDisabled;
    auto db = std::make_unique<Database>(fresh);
    DefineSchema(*db);
    RecoveryOptions options;
    options.log_path = log;
    options.threads = threads;
    EXPECT_TRUE(RecoverDatabase(*db, options, report).ok())
        << "threads=" << threads;
    return db;
  };
  RecoveryReport serial_report, parallel_report;
  auto serial_db = recover(1, &serial_report);
  auto parallel_db = recover(4, &parallel_report);
  EXPECT_EQ(serial_report.max_timestamp, parallel_report.max_timestamp);
  EXPECT_EQ(DumpTable(*serial_db), DumpTable(*parallel_db));

  // Post-recovery commits draw strictly above everything replayed, even
  // though the crashed run still had partially drawn blocks outstanding
  // below the maximum when it died. Check what actually reaches the log
  // after a recover-and-continue open: the replay order of the *next*
  // recovery depends on these records sorting after all existing ones.
  EXPECT_GE(serial_db->LastCommitTimestamp(), serial_report.max_timestamp);
  {
    DatabaseOptions opts = FileOptions();
    opts.ts_block_size = 4;
    auto db = Database::Open(opts, DefineSchema);
    ASSERT_NE(db, nullptr);
    ASSERT_TRUE(InsertRow(*db, 999999, 1).ok());
  }
  std::vector<ParsedLogRecord> continued;
  ASSERT_TRUE(ParseAllRecords(ReadLogFile(log), &continued));
  ASSERT_GT(continued.size(), records.size());
  for (size_t i = records.size(); i < continued.size(); ++i) {
    EXPECT_GT(continued[i].end_ts, serial_report.max_timestamp);
  }
}

// --- failure surfacing -------------------------------------------------------

TEST_P(CrashRecoveryTest, BadLogPathSurfacesAtOpen) {
  DatabaseOptions opts;
  opts.scheme = GetParam();
  opts.log_mode = LogMode::kAsync;
  opts.log_path = "/nonexistent_dir_mvstore/x.log";
  {
    Database db(opts);  // construction warns on stderr but stays usable
    EXPECT_FALSE(db.log_status().ok());
  }
  Status status;
  auto db = Database::Open(opts, DefineSchema, &status);
  EXPECT_EQ(db, nullptr);
  EXPECT_FALSE(status.ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CrashRecoveryTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
