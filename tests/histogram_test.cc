// Tests for the striped latency histograms (src/obs/histogram.h):
// bucket-scheme invariants, the documented quantile accuracy bound,
// concurrent recording against a serial oracle, the enable-flag contract
// (off = true no-op), thread-exit folding, and snapshot deltas.
#include "obs/histogram.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mvstore {
namespace obs {
namespace {

TEST(BucketScheme, IndexesAreMonotoneAndInRange) {
  uint32_t prev = 0;
  for (uint64_t v = 0; v < 100000; ++v) {
    uint32_t idx = BucketIndex(v);
    ASSERT_LT(idx, kNumBuckets);
    ASSERT_GE(idx, prev) << "BucketIndex not monotone at " << v;
    prev = idx;
  }
  // Spot-check the top of the range.
  ASSERT_LT(BucketIndex(~uint64_t{0}), kNumBuckets);
  ASSERT_EQ(BucketIndex(~uint64_t{0}), kNumBuckets - 1);
}

TEST(BucketScheme, UpperBoundCoversValueWithin25Percent) {
  auto check = [](uint64_t v) {
    uint64_t upper = BucketUpperBound(BucketIndex(v));
    ASSERT_GE(upper, v) << "bucket upper bound under-reports " << v;
    // <= 25% over: upper < 1.25 * v (+1 for integer truncation at small v).
    ASSERT_LE(upper, v + v / 4 + 1) << "bucket upper bound too loose at " << v;
  };
  for (uint64_t v = 0; v < 100000; ++v) check(v);
  for (uint32_t shift = 17; shift < 63; ++shift) {
    check((uint64_t{1} << shift) - 1);
    check(uint64_t{1} << shift);
    check((uint64_t{1} << shift) + 1);
  }
}

TEST(BucketScheme, UpperBoundIsInclusive) {
  // Every bucket's upper bound must itself land in that bucket, and the
  // next value in the next bucket.
  for (uint32_t idx = 0; idx + 1 < kNumBuckets; ++idx) {
    uint64_t upper = BucketUpperBound(idx);
    ASSERT_EQ(BucketIndex(upper), idx);
    ASSERT_GT(BucketIndex(upper + 1), idx);
  }
}

TEST(HistogramData, QuantileAccuracyBound) {
  std::mt19937_64 rng(42);
  // Mix of scales: uniform-in-octave so every magnitude is exercised.
  std::vector<uint64_t> values;
  HistogramData hist;
  for (int i = 0; i < 20000; ++i) {
    uint32_t octave = static_cast<uint32_t>(rng() % 30);
    uint64_t v = rng() % (uint64_t{1} << octave);
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
    if (rank >= values.size()) rank = values.size() - 1;
    uint64_t truth = values[rank];
    uint64_t estimate = hist.ValueAtQuantile(q);
    EXPECT_GE(estimate, truth) << "q=" << q;
    EXPECT_LE(estimate, truth + truth / 4 + 1) << "q=" << q;
  }
  EXPECT_GE(hist.ValueAtQuantile(1.0), hist.max);
  EXPECT_LE(hist.ValueAtQuantile(1.0), hist.max + hist.max / 4 + 1);
}

TEST(HistogramData, SubtractYieldsIntervalDelta) {
  HistogramData base;
  for (uint64_t v : {1, 10, 100}) base.Record(v);
  HistogramData now = base;
  for (uint64_t v : {5, 50, 500}) now.Record(v);
  now.Subtract(base);
  EXPECT_EQ(now.count, 3u);
  EXPECT_EQ(now.sum, 555u);
  EXPECT_EQ(now.buckets[BucketIndex(5)], 1u);
  EXPECT_EQ(now.buckets[BucketIndex(1)], 0u);
}

TEST(LatencyHistograms, ConcurrentRecordMatchesSerialOracle) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  LatencyHistograms hists;
  // Build the oracle first, from the exact per-thread sequences.
  HistogramData oracle;
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + t);
    for (int i = 0; i < kPerThread; ++i) oracle.Record(rng() % 1000000);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hists, t] {
      std::mt19937_64 rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        hists.Record(Hist::kCommitTotal, rng() % 1000000);
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramData merged = hists.Snapshot(Hist::kCommitTotal);
  EXPECT_EQ(merged.count, oracle.count);
  EXPECT_EQ(merged.sum, oracle.sum);
  EXPECT_EQ(merged.max, oracle.max);
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    ASSERT_EQ(merged.buckets[i], oracle.buckets[i]) << "bucket " << i;
  }
  // Other histograms stayed empty.
  EXPECT_EQ(hists.Snapshot(Hist::kGcPass).count, 0u);
}

TEST(LatencyHistograms, ThreadExitFoldsIntoRetired) {
  LatencyHistograms hists;
  std::thread recorder([&hists] {
    for (uint64_t v = 0; v < 100; ++v) hists.Record(Hist::kReadLatency, v);
  });
  recorder.join();
  // The exiting thread's cell was folded and recycled; the data survives.
  HistogramData snap = hists.Snapshot(Hist::kReadLatency);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.max, 99u);
  // Cell recycling: a second short-lived thread reuses the same index.
  uint32_t used = hists.UsedCells();
  std::thread again([&hists] { hists.Record(Hist::kReadLatency, 7); });
  again.join();
  EXPECT_EQ(hists.UsedCells(), used);
  EXPECT_EQ(hists.Snapshot(Hist::kReadLatency).count, 101u);
}

TEST(LatencyHistograms, DisabledIsATrueNoOp) {
  LatencyHistograms hists(/*enabled=*/false);
  EXPECT_FALSE(hists.enabled());
  for (uint64_t v = 0; v < 1000; ++v) hists.Record(Hist::kCommitTotal, v);
  // Nothing recorded, and no per-thread cell was even acquired.
  EXPECT_EQ(hists.Snapshot(Hist::kCommitTotal).count, 0u);
  EXPECT_EQ(hists.UsedCells(), 0u);
  // Flipping the flag on starts recording without re-construction.
  hists.SetEnabled(true);
  hists.Record(Hist::kCommitTotal, 5);
  EXPECT_EQ(hists.Snapshot(Hist::kCommitTotal).count, 1u);
  EXPECT_GE(hists.UsedCells(), 1u);
}

TEST(LatencyHistograms, ResetClearsAllCells) {
  LatencyHistograms hists;
  hists.Record(Hist::kCommitTotal, 123);
  std::thread other([&hists] { hists.Record(Hist::kCommitTotal, 456); });
  other.join();
  ASSERT_EQ(hists.Snapshot(Hist::kCommitTotal).count, 2u);
  hists.Reset();
  EXPECT_EQ(hists.Snapshot(Hist::kCommitTotal).count, 0u);
  EXPECT_EQ(hists.Snapshot(Hist::kCommitTotal).max, 0u);
}

TEST(TickClock, AdvancesAndCalibrates) {
  uint64_t a = NowTicks();
  uint64_t b = NowTicks();
  EXPECT_GE(b, a);
  double npt = NanosPerTick();
  EXPECT_GT(npt, 0.0);
  // Round-trip: 1ms of ticks converts back to ~1ms of nanos.
  uint64_t ticks = MicrosToTicks(1000);
  EXPECT_NEAR(TicksToMicros(ticks), 1000.0, 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace mvstore
