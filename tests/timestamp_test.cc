// Block-batched timestamp allocation (txn/timestamp.h): the invariants the
// MV hot path leans on. Next() hands out per-thread blocks carved off the
// shared cursor; Current() is a plain load of the drawn-timestamp ceiling.
// The safety property under test throughout: a Current() observation is
// never overtaken -- every Next() that starts after it returns a strictly
// greater value, no matter how many partially drawn blocks are outstanding.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "storage/lock_word.h"
#include "txn/timestamp.h"

namespace mvstore {
namespace {

/// Uniqueness must hold for any block size, including the degenerate
/// unbatched configuration and sizes that do not divide the draw count.
TEST(TimestampBatchTest, ConcurrentUniquenessAcrossBlockSizes) {
  for (uint32_t block : {1u, 3u, 16u, 64u}) {
    TimestampGenerator gen(block);
    constexpr int kThreads = 8, kPer = 5000;
    std::vector<std::vector<Timestamp>> drawn(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        drawn[t].reserve(kPer);
        for (int i = 0; i < kPer; ++i) drawn[t].push_back(gen.Next());
      });
    }
    for (auto& th : threads) th.join();
    std::set<Timestamp> all;
    Timestamp max_drawn = 0;
    for (auto& v : drawn) {
      Timestamp prev = 0;
      for (Timestamp t : v) {
        EXPECT_GT(t, prev);  // per-thread monotone
        prev = t;
        if (t > max_drawn) max_drawn = t;
      }
      all.insert(v.begin(), v.end());
    }
    EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPer)
        << "duplicate timestamps at block size " << block;
    // After every drawer finished, the clock reads exactly the max draw.
    EXPECT_EQ(gen.Current(), max_drawn);
  }
}

/// The begin-timestamp rule: an observed Current() value B is strictly
/// below every timestamp drawn after the observation, even though blocks
/// carved before the observation still hold undrawn values (the draw path
/// must abandon them rather than emit one <= B). A violation here is a
/// transaction committing into an open snapshot's past.
TEST(TimestampBatchTest, ObservationNeverOvertaken) {
  TimestampGenerator gen(16);
  constexpr int kDrawers = 4, kObservers = 3, kPer = 20000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kDrawers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        Timestamp before = gen.Current();
        Timestamp t2 = gen.Next();
        if (t2 <= before) failed.store(true);
      }
    });
  }
  for (int t = 0; t < kObservers; ++t) {
    threads.emplace_back([&] {
      Timestamp prev = 0;
      for (int i = 0; i < kPer; ++i) {
        Timestamp now = gen.Current();
        if (now < prev) failed.store(true);  // clock must be monotone
        prev = now;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

/// Current() reflects a finished draw immediately: no "committed but not
/// yet observable" window across threads (read-your-writes after a join).
TEST(TimestampBatchTest, FreshnessAfterJoin) {
  TimestampGenerator gen(16);
  (void)gen.Next();  // main thread holds a partially drawn block
  Timestamp worker_ts = 0;
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i) worker_ts = gen.Next();
  });
  worker.join();
  // Main's own outstanding block must not hide the worker's draws.
  EXPECT_GE(gen.Current(), worker_ts);
  // And main's next draw lands above them.
  EXPECT_GT(gen.Next(), worker_ts);
}

/// AdvanceTo (recovery) must defeat outstanding blocks: a block carved
/// before the advance may not emit timestamps at or below the new floor,
/// or post-recovery commits would collide with replayed history.
TEST(TimestampBatchTest, AdvanceToRetiresOutstandingBlocks) {
  TimestampGenerator gen(16);
  Timestamp drawn = gen.Next();  // carves block [1..16] on this thread
  EXPECT_EQ(drawn, 1u);
  std::thread other([&] { (void)gen.Next(); });  // second outstanding block
  other.join();
  gen.AdvanceTo(1000);
  EXPECT_GE(gen.Current(), 1000u);
  Timestamp after = gen.Next();  // the stale [2..16] remainder is abandoned
  EXPECT_GT(after, 1000u);
  EXPECT_EQ(gen.Current(), after);
  // AdvanceTo below the clock is a no-op, never a regression.
  gen.AdvanceTo(5);
  EXPECT_EQ(gen.Current(), after);
}

/// Slots are recycled through the thread-exit registry: churning many
/// short-lived threads through one generator must reuse a bounded set of
/// slots, not grow the high-water mark per thread.
TEST(TimestampBatchTest, SlotRecyclingUnderThreadChurn) {
  TimestampGenerator gen(16);
  std::set<Timestamp> all;
  for (int i = 0; i < 200; ++i) {
    std::vector<Timestamp> out(2);
    std::thread t([&] {
      out[0] = gen.Next();
      out[1] = gen.Next();
    });
    t.join();
    all.insert(out.begin(), out.end());
  }
  EXPECT_EQ(all.size(), 400u);  // unique across recycled slots
  EXPECT_LE(gen.UsedSlots(), 4u);  // sequential churn reuses one slot
}

/// Transaction IDs mask to 54 bits and skip the two reserved encodings
/// (0 and kNoWriter). Drive the raw counter across the wrap boundary.
TEST(TxnIdBatchTest, WrapSkipsReservedEncodings) {
  // Position so the next block straddles kNoWriter (= mask) and 0.
  TxnIdGenerator gen(lockword::kNoWriter - 3);
  std::set<TxnId> seen;
  for (int i = 0; i < 2 * static_cast<int>(TxnIdGenerator::kBlockSize); ++i) {
    TxnId id = gen.Next();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, lockword::kNoWriter);
    EXPECT_LE(id, kMaxTxnId);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

/// Concurrent ID draws are unique (block handout is the only shared step).
TEST(TxnIdBatchTest, ConcurrentUniqueness) {
  TxnIdGenerator gen;
  constexpr int kThreads = 8, kPer = 5000;
  std::vector<std::vector<TxnId>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      drawn[t].reserve(kPer);
      for (int i = 0; i < kPer; ++i) drawn[t].push_back(gen.Next());
    });
  }
  for (auto& th : threads) th.join();
  std::set<TxnId> all;
  for (auto& v : drawn) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace mvstore
