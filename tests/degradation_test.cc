// End-to-end failure semantics: read-only degradation (an injected log
// write/fsync failure flips the Database to kReadOnly — writes refused,
// reads/scans/stats served, counters visible) and the MVClient retry
// policy (kUnavailable retry, reconnect, per-op timeout, and the
// never-retry rule for non-idempotent requests with unknown outcomes).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/failpoint.h"
#include "core/database.h"
#include "server/loopback.h"
#include "server/server_core.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};

uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TableId MakeRowTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 1024, true});
  return db.CreateTable(def);
}

const Scheme kAllSchemes[] = {Scheme::kSingleVersion,
                              Scheme::kMultiVersionLocking,
                              Scheme::kMultiVersionOptimistic};

std::string TempDir(const char* name) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("mvstore_degradation_" + std::string(name));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

uint64_t Counter(Database& db, const char* name) {
  for (const auto& [counter, value] : db.CounterSnapshot()) {
    if (counter == name) return value;
  }
  return 0;
}

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// The core contract, per scheme: a failed fsync during a synchronous commit
// returns kReadOnly (the commit is NOT durable), flips the database to
// sticky read-only mode, refuses later writes cheaply, and keeps serving
// reads and scans.
TEST_F(DegradationTest, FsyncFailureFlipsDatabaseToReadOnly) {
  for (Scheme scheme : kAllSchemes) {
    SCOPED_TRACE(SchemeName(scheme));
    failpoint::DisarmAll();
    const std::string dir = TempDir("flip");
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.log_mode = LogMode::kSync;
    opts.log_path = dir + "/wal";
    opts.fsync_log = true;
    Database db(opts);
    TableId table = MakeRowTable(db);

    // Healthy writes first.
    for (uint64_t k = 1; k <= 10; ++k) {
      Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
      Row row{k, k * 100};
      ASSERT_TRUE(db.Insert(txn, table, &row).ok());
      ASSERT_TRUE(db.Commit(txn).ok());
    }
    EXPECT_FALSE(db.read_only());

    // Break the sink: the next synchronous commit's flush fails its fsync.
    ASSERT_TRUE(failpoint::ArmSpec("log.fsync=error"));
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
    Row row{11, 1100};
    Status s = db.Insert(txn, table, &row);
    if (s.ok()) s = db.Commit(txn);
    EXPECT_TRUE(s.IsReadOnly()) << s.ToString();
    EXPECT_TRUE(db.read_only());
    EXPECT_EQ(Counter(db, "read_only_transitions"), 1u);

    // Sticky: disarming the failpoint does not resurrect the sink — only a
    // restart (Database::Open) can prove the durable state is sound again.
    failpoint::DisarmAll();
    Txn* txn2 = db.Begin(IsolationLevel::kReadCommitted);
    Row row2{12, 1200};
    EXPECT_TRUE(db.Insert(txn2, table, &row2).IsReadOnly());
    EXPECT_TRUE(db.Update(txn2, table, 0, 1, [](void*) {}).IsReadOnly());
    EXPECT_TRUE(db.Delete(txn2, table, 0, 1).IsReadOnly());
    // The refused transaction may still read and commit its read-only part.
    Row read{};
    EXPECT_TRUE(db.Read(txn2, table, 0, 1, &read).ok());
    EXPECT_EQ(read.value, 100u);
    EXPECT_TRUE(db.Commit(txn2).ok());
    EXPECT_GE(Counter(db, "writes_refused_read_only"), 3u);
    EXPECT_EQ(Counter(db, "read_only_transitions"), 1u);  // flipped once

    // Reads and scans keep serving. The kReadOnly'd commit (key 11) was
    // already serialized when its flush failed, so it IS visible in memory
    // — that is exactly what "not durable" means: present now, gone after
    // restart. The per-op refusals (key 12) never applied at all.
    Txn* reader = db.Begin(IsolationLevel::kReadCommitted, true);
    uint64_t rows_seen = 0;
    bool saw_refused = false;
    EXPECT_TRUE(db.ScanTable(reader, table, [&](const void* p) {
                    ++rows_seen;
                    saw_refused |= static_cast<const Row*>(p)->key == 12;
                    return true;
                  }).ok());
    EXPECT_EQ(rows_seen, 11u);
    EXPECT_FALSE(saw_refused);
    EXPECT_TRUE(db.Commit(reader).ok());
  }
}

// Asynchronous commits never promised durability at ack time, so they keep
// returning OK; the flip happens when the next commit probes the sink.
TEST_F(DegradationTest, AsyncModeFlipsOnNextCommitProbe) {
  const std::string dir = TempDir("async");
  DatabaseOptions opts;
  opts.log_mode = LogMode::kAsync;
  opts.log_path = dir + "/wal";
  opts.fsync_log = true;
  Database db(opts);
  TableId table = MakeRowTable(db);

  ASSERT_TRUE(failpoint::ArmSpec("log.fsync=error"));
  Status s;
  for (int attempt = 0; attempt < 200 && !db.read_only(); ++attempt) {
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
    Row row{static_cast<uint64_t>(attempt) + 1, 1};
    s = db.Insert(txn, table, &row);
    if (s.ok()) {
      s = db.Commit(txn);
    } else {
      db.Abort(txn);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(db.read_only());
  EXPECT_TRUE(s.IsReadOnly());  // the probing commit reported the flip
}

// Operator path: EnterReadOnlyMode can fence writes deliberately.
TEST_F(DegradationTest, ExplicitEnterReadOnlyMode) {
  Database db(DatabaseOptions{});
  TableId table = MakeRowTable(db);
  db.EnterReadOnlyMode("operator fence");
  EXPECT_TRUE(db.read_only());
  Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
  Row row{1, 1};
  EXPECT_TRUE(db.Insert(txn, table, &row).IsReadOnly());
  db.Abort(txn);
  EXPECT_EQ(Counter(db, "read_only_transitions"), 1u);
}

// The acceptance-criteria scenario over the service layer: a client keeps
// completing a read workload across the read-only transition, writes come
// back as kReadOnly on the wire, and STATS exposes the transition.
TEST_F(DegradationTest, ClientReadWorkloadSurvivesTransition) {
  const std::string dir = TempDir("serve");
  DatabaseOptions opts;
  opts.log_mode = LogMode::kSync;
  opts.log_path = dir + "/wal";
  opts.fsync_log = true;
  Database db(opts);
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);

  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_base_ms = 0;
  MVClient client(transport, copts);

  // Seed rows while healthy.
  for (uint64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
    Row row{k, k + 7};
    ASSERT_TRUE(client.Insert(table, &row, sizeof(row)).ok());
    ASSERT_TRUE(client.Commit().ok());
  }

  // Degrade mid-workload.
  ASSERT_TRUE(failpoint::ArmSpec("log.fsync=error"));
  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  Row row{21, 28};
  Status s = client.Insert(table, &row, sizeof(row));
  if (s.ok()) {
    s = client.Commit();
  } else {
    client.Abort();
  }
  EXPECT_TRUE(s.IsReadOnly()) << s.ToString();
  EXPECT_TRUE(db.read_only());
  failpoint::DisarmAll();

  // The same client completes a full read workload after the transition.
  for (uint64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted, true).ok());
    Row read{};
    ASSERT_TRUE(client.Get(table, 0, k, &read, sizeof(read)).ok()) << k;
    EXPECT_EQ(read.value, k + 7);
    ASSERT_TRUE(client.Commit().ok());
  }

  // Writes are refused on the wire with the same code the engine uses.
  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  Row refused{22, 29};
  EXPECT_TRUE(client.Insert(table, &refused, sizeof(refused)).IsReadOnly());
  ASSERT_TRUE(client.Abort().ok());

  // Operators can see the degradation through STATS.
  std::string stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_NE(stats.find("read_only_transitions=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("writes_refused_read_only"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MVClient retry policy, driven by a scripted in-memory transport.
// ---------------------------------------------------------------------------

// One scripted connection: answers each request with the next status in the
// script. An exhausted script makes the connection go dead (EOF). A mute
// connection accepts requests but never answers (for timeout tests).
struct ConnScript {
  std::vector<Status> statuses;
  bool repeat_last = false;
  bool mute = false;
};

class ScriptedConnection : public Connection {
 public:
  explicit ScriptedConnection(ConnScript script)
      : script_(std::move(script)) {}

  bool Send(const uint8_t* data, size_t n) override {
    parser_.Feed(data, n);
    wire::Frame frame;
    while (parser_.Next(&frame) == wire::FrameParser::Result::kFrame) {
      if (script_.mute) continue;
      if (script_.statuses.empty()) continue;  // dead: EOF on next read
      Status s = script_.statuses.front();
      if (script_.statuses.size() > 1 || !script_.repeat_last) {
        script_.statuses.erase(script_.statuses.begin());
      }
      wire::AppendResponse(&pending_, frame.opcode, s, nullptr, 0, false);
    }
    return true;
  }

  size_t Recv(uint8_t* buf, size_t n) override {
    if (pending_.empty()) return 0;  // EOF
    size_t take = n < pending_.size() ? n : pending_.size();
    std::memcpy(buf, pending_.data(), take);
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(take));
    return take;
  }

  size_t RecvTimeout(uint8_t* buf, size_t n, uint32_t timeout_ms,
                     bool* timed_out) override {
    (void)timeout_ms;
    if (timed_out != nullptr) *timed_out = false;
    if (pending_.empty() && script_.mute) {
      if (timed_out != nullptr) *timed_out = true;  // simulate a hung peer
      return 0;
    }
    return Recv(buf, n);
  }

 private:
  ConnScript script_;
  wire::FrameParser parser_;
  std::vector<uint8_t> pending_;
};

class ScriptedTransport : public Transport {
 public:
  explicit ScriptedTransport(std::vector<ConnScript> connections)
      : connections_(std::move(connections)) {}

  std::unique_ptr<Connection> Connect(Status* status) override {
    ++dials_;
    if (connections_.empty()) {
      if (status != nullptr) *status = Status::Unavailable();
      return nullptr;
    }
    ConnScript script = connections_.front();
    if (connections_.size() > 1) {
      connections_.erase(connections_.begin());
    }
    if (status != nullptr) *status = Status::OK();
    return std::make_unique<ScriptedConnection>(std::move(script));
  }

  int dials() const { return dials_; }

 private:
  std::vector<ConnScript> connections_;
  int dials_ = 0;
};

ConnScript AlwaysOk() { return ConnScript{{Status::OK()}, true, false}; }

TEST_F(DegradationTest, RetriesUnavailableOnLiveConnection) {
  ClientOptions copts;
  copts.max_retries = 5;
  copts.backoff_base_ms = 0;
  auto conn = std::make_unique<ScriptedConnection>(ConnScript{
      {Status::Unavailable(), Status::Unavailable(), Status::OK()},
      true,
      false});
  MVClient client(std::move(conn), copts);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.reconnects(), 0u);  // no transport involved
}

TEST_F(DegradationTest, RetryBudgetExhaustionSurfacesUnavailable) {
  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_base_ms = 0;
  auto conn = std::make_unique<ScriptedConnection>(
      ConnScript{{Status::Unavailable()}, true, false});
  MVClient client(std::move(conn), copts);
  EXPECT_TRUE(client.Ping().IsUnavailable());
  EXPECT_EQ(client.retries(), 2u);
}

TEST_F(DegradationTest, TimeoutSurfacesAndPoisonsConnection) {
  ClientOptions copts;
  copts.op_timeout_ms = 30;
  auto conn =
      std::make_unique<ScriptedConnection>(ConnScript{{}, false, true});
  MVClient client(std::move(conn), copts);
  Status s = client.Ping();
  EXPECT_TRUE(s.IsTimeout()) << s.ToString();
  EXPECT_FALSE(client.connected());
  // Without a transport the poisoned client stays down.
  EXPECT_FALSE(client.Ping().ok());
}

TEST_F(DegradationTest, TimeoutRecoversThroughReconnect) {
  ClientOptions copts;
  copts.op_timeout_ms = 30;
  copts.max_retries = 1;
  copts.backoff_base_ms = 0;
  ScriptedTransport transport({ConnScript{{}, false, true}, AlwaysOk()});
  MVClient client(transport, copts);
  EXPECT_TRUE(client.Ping().ok());  // timed out once, reconnected, succeeded
  EXPECT_EQ(client.retries(), 1u);
  EXPECT_EQ(client.reconnects(), 2u);  // lazy first dial + redial
}

TEST_F(DegradationTest, NonIdempotentOpsAreNeverRetriedOnUnknownOutcome) {
  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_base_ms = 0;
  // First connection dies before answering (script exhausted), second is
  // healthy: an idempotent request would recover, a write must not.
  ScriptedTransport transport({ConnScript{{}, false, false}, AlwaysOk()});
  MVClient client(transport, copts);
  Row row{1, 1};
  Status s = client.Insert(0, &row, sizeof(row));
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsTimeout());
  EXPECT_EQ(client.retries(), 0u);  // outcome unknown: surfaced, not retried
  // The next idempotent request reconnects and completes.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.reconnects(), 2u);
}

TEST_F(DegradationTest, NoRetryInsideOpenTransaction) {
  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_base_ms = 0;
  // Connection answers Begin, then dies; the follow-up Get must not be
  // replayed on a fresh connection (its transaction is gone).
  ScriptedTransport transport(
      {ConnScript{{Status::OK()}, false, false}, AlwaysOk()});
  MVClient client(transport, copts);
  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  EXPECT_TRUE(client.in_txn());
  std::vector<uint8_t> payload;
  Status s = client.Get(0, 0, 1, &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_FALSE(client.in_txn());  // the txn died with the connection
  // A fresh Begin is retry-safe and lands on the new connection.
  EXPECT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  EXPECT_TRUE(client.in_txn());
}

TEST_F(DegradationTest, FailedDialIsRetryableForWrites) {
  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_base_ms = 0;
  // An empty transport refuses the dial; nothing was ever sent, so even a
  // write may retry the connect — and surface kUnavailable when it never
  // comes up.
  ScriptedTransport transport({});
  MVClient client(transport, copts);
  Row row{1, 1};
  Status s = client.Insert(0, &row, sizeof(row));
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(transport.dials(), 3);
}

}  // namespace
}  // namespace mvstore
