// Failover drill (ctest label: repl).
//
// The headline replication claim, proven end to end: a LIVE follower — not a
// post-mortem mirror — survives its leader being killed at a seeded
// durability failpoint, is promoted, and holds every commit the dead leader
// ever acknowledged.
//
// Topology per iteration: the leader runs in a forked child (opened in
// LogMode::kSync with fsync, hosting a synchronous ReplShipper) so the drill
// can kill the whole leader process mid-write, mid-fsync, mid-rotation,
// mid-checkpoint, and mid-segment-ship. The follower is a Replica in THIS
// process, attached over real TCP, serving read-only snapshot transactions
// through the normal session layer while the leader hammers commits. Child
// writers record every acknowledged commit in an append-only ack ledger
// (raw write(2), same as the chaos drill) before the crash kills them.
//
// After the child dies the parent promotes the follower and checks:
//   1. zero acknowledged-commit loss: every ledger entry is present in the
//      promoted database at >= its acked version with a consistent checksum
//      (asserted whenever the follower was attached continuously from its
//      last confirmed attach to the leader's death — the window in which
//      every ack was provably follower-coupled);
//   2. divergence: a pre-promote copy of the mirror, recovered serially
//      (recovery_threads = 1) by ordinary crash recovery, yields a table
//      byte-identical to the promoted follower's — promote's tail seal and
//      crash recovery's torn-tail truncation agree exactly;
//   3. the session gate: reads work while following, writes are refused
//      kReadOnly, and after Promote the same session path accepts writes.
//
// One designated iteration additionally arms repl.tail.recv as an ERROR in
// the parent, forcing a mid-tail-batch connection drop + reconnect +
// re-attach under live load before the kill lands.
//
// Scale: MVSTORE_REPL_ITERS sets iterations per scheme (default 3; CI runs
// >= 20 on the Release leg).
#include <gtest/gtest.h>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/failpoint.h"
#include "core/database.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "server/loopback.h"
#include "server/server_core.h"

namespace mvstore {
namespace {

#if defined(__linux__)

struct Row {
  uint64_t key;
  uint64_t version;
  uint64_t checksum;
};

struct AckRec {
  uint64_t key;
  uint64_t version;
  uint64_t checksum;
};

constexpr uint64_t kKeys = 256;
constexpr TableId kTable = 0;

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Lcg(uint64_t x) {
  return x * 6364136223846793005ull + 1442695040888963407ull;
}

uint64_t RowChecksum(uint64_t key, uint64_t version) {
  return SplitMix(key ^ SplitMix(version));
}

uint64_t RowKey(const void* payload) {
  return static_cast<const Row*>(payload)->key;
}

void DefineSchema(Database& db) {
  TableDef def;
  def.name = "drill";
  def.payload_size = sizeof(Row);
  IndexDef primary;
  primary.extractor = RowKey;
  primary.bucket_count = 4 * kKeys;
  primary.unique = true;
  def.indexes.push_back(primary);
  db.CreateTable(std::move(def));
}

DatabaseOptions MakeLeaderOptions(const std::string& dir, Scheme scheme) {
  DatabaseOptions db;
  db.scheme = scheme;
  db.log_mode = LogMode::kSync;
  db.log_path = dir + "/leader/wal";
  db.fsync_log = true;
  db.log_segment_bytes = 32 * 1024;
  db.checkpoint_path = dir + "/leader/ckpt";
  db.group_commit_us = 200;
  return db;
}

DatabaseOptions MakeFollowerOptions(const std::string& dir, Scheme scheme) {
  DatabaseOptions db = MakeLeaderOptions(dir, scheme);
  db.log_path = dir + "/follower/wal";
  db.checkpoint_path = dir + "/follower/ckpt";
  return db;
}

// The leader-kill menu: the chaos drill's durability sites plus the
// segment/tail ship path. All crash the whole leader process.
struct KillSite {
  const char* site;
  failpoint::ActionKind kind;
  uint32_t min_hit;
  uint32_t span;
};

constexpr KillSite kKillSites[] = {
    {"log.append.write", failpoint::ActionKind::kCrash, 4, 120},
    {"log.append.partial", failpoint::ActionKind::kError, 4, 120},
    {"log.append.sync", failpoint::ActionKind::kCrash, 2, 40},
    {"log.fsync", failpoint::ActionKind::kCrash, 1, 24},
    {"log.rotate", failpoint::ActionKind::kCrash, 1, 6},
    {"checkpoint.write", failpoint::ActionKind::kCrash, 1, 3},
    {"checkpoint.rename", failpoint::ActionKind::kCrash, 1, 3},
    {"repl.ship.send", failpoint::ActionKind::kCrash, 1, 80},
};
constexpr size_t kNumKillSites = sizeof(kKillSites) / sizeof(kKillSites[0]);

void WriteAck(int fd, std::mutex* mu, uint64_t key, uint64_t version) {
  AckRec rec{key, version, RowChecksum(key, version)};
  uint8_t buf[sizeof(AckRec)];
  std::memcpy(buf, &rec, sizeof(rec));
  std::lock_guard<std::mutex> lock(*mu);
  size_t done = 0;
  while (done < sizeof(buf)) {
    ssize_t w = ::write(fd, buf + done, sizeof(buf) - done);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    done += static_cast<size_t>(w);
  }
}

void LeaderWorker(Database* db, int ack_fd, std::mutex* ack_mu, uint64_t seed,
                  uint32_t txns, bool checkpointer, std::atomic<bool>* failed) {
  uint64_t rng = seed != 0 ? seed : 1;
  for (uint32_t i = 0; i < txns; ++i) {
    rng = Lcg(rng);
    const uint64_t key = 1 + ((rng >> 33) % kKeys);
    uint64_t version = 0;
    Status s;
    for (int attempt = 0; attempt < 64; ++attempt) {
      s = db->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
        Status us = db->Update(txn, kTable, 0, key, [&](void* p) {
          Row* r = static_cast<Row*>(p);
          r->version += 1;
          version = r->version;
          r->checksum = RowChecksum(key, version);
        });
        if (us.IsNotFound()) {
          version = 1;
          Row r{key, version, RowChecksum(key, version)};
          us = db->Insert(txn, kTable, &r);
        }
        return us;
      });
      if (!s.IsAlreadyExists()) break;
    }
    if (!s.ok()) {
      failed->store(true, std::memory_order_relaxed);
      return;
    }
    WriteAck(ack_fd, ack_mu, key, version);
    if (checkpointer && (i % 250) == 249) (void)db->Checkpoint();
  }
}

/// Leader child: arm the seeded kill, open the database, start the sync
/// shipper, publish the port (atomic rename so the parent never reads a
/// partial write), then hammer commits until the failpoint fires or the
/// budget runs out.
[[noreturn]] void RunLeaderChild(const std::string& dir, Scheme scheme,
                                 const KillSite& site, uint32_t hit,
                                 uint64_t seed, uint32_t txns) {
  failpoint::Action action;
  action.kind = site.kind;
  action.hit = hit;
  failpoint::Arm(site.site, action);

  Status st;
  auto db = Database::Open(MakeLeaderOptions(dir, scheme), DefineSchema, &st);
  if (db == nullptr) std::_Exit(3);

  ShipperOptions sopts;
  // Never drop a laggard inside the drill: the zero-acked-loss claim is only
  // provable while every ack is follower-coupled.
  sopts.ack_timeout_ms = 120000;
  ReplShipper shipper(*db, sopts);
  if (!shipper.Start().ok()) std::_Exit(6);

  {
    const std::string tmp = dir + "/port.tmp";
    std::ofstream out(tmp);
    out << shipper.port() << "\n";
    out.close();
    std::error_code ec;
    std::filesystem::rename(tmp, dir + "/port", ec);
    if (ec) std::_Exit(6);
  }

  // Wait for the parent's follower to attach before opening the commit
  // floodgates — replication is set up before traffic in any real
  // deployment, and it puts the seeded kill inside the interesting window
  // (leader + follower live, stream hot). A kill during the bootstrap pull
  // (repl.ship.send at a low hit) still exercises the pre-attach path.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (shipper.attached_followers() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  int ack_fd =
      ::open((dir + "/acks.bin").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) std::_Exit(4);
  std::mutex ack_mu;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back(LeaderWorker, db.get(), ack_fd, &ack_mu,
                         SplitMix(seed ^ (t + 1)), txns, t == 0, &failed);
  }
  for (auto& th : threads) th.join();
  ::close(ack_fd);
  // Clean exit: the shipper's sync coupling has already guaranteed every
  // acked commit reached the follower, so teardown order is just hygiene.
  shipper.Stop();
  db.reset();
  std::_Exit(failed.load() ? 5 : 0);
}

bool LoadAcks(const std::string& path, std::vector<AckRec>* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return true;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const size_t count = bytes.size() / sizeof(AckRec);
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AckRec rec;
    std::memcpy(&rec, bytes.data() + i * sizeof(AckRec), sizeof(AckRec));
    out->push_back(rec);
  }
  return true;
}

/// Scan every row of `db` into key -> Row.
testing::AssertionResult ScanRows(Database& db,
                                  std::map<uint64_t, Row>* rows) {
  rows->clear();
  Txn* txn = db.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
  Status s = db.ScanTable(txn, kTable, [&](const void* p) {
    const Row* r = static_cast<const Row*>(p);
    (*rows)[r->key] = *r;
    return true;
  });
  if (s.ok()) s = db.Commit(txn);
  if (!s.ok()) {
    return testing::AssertionFailure() << "scan failed: " << s.ToString();
  }
  return testing::AssertionSuccess();
}

/// Every acked (key, version) present at >= version with consistent
/// checksums — the zero-acked-loss contract.
testing::AssertionResult VerifyAcksAgainst(
    const std::map<uint64_t, Row>& rows, const std::vector<AckRec>& acks) {
  for (const AckRec& ack : acks) {
    if (ack.checksum != RowChecksum(ack.key, ack.version)) {
      return testing::AssertionFailure()
             << "corrupt ack record for key " << ack.key;
    }
    auto it = rows.find(ack.key);
    if (it == rows.end()) {
      return testing::AssertionFailure()
             << "acked key " << ack.key << " (version " << ack.version
             << ") missing after failover";
    }
    if (it->second.version < ack.version) {
      return testing::AssertionFailure()
             << "acked commit lost: key " << ack.key << " at version "
             << it->second.version << " < acked " << ack.version;
    }
    if (it->second.checksum !=
        RowChecksum(it->second.key, it->second.version)) {
      return testing::AssertionFailure()
             << "row for key " << ack.key << " fails its checksum";
    }
  }
  return testing::AssertionSuccess();
}

uint32_t ItersPerScheme() {
  const char* env = std::getenv("MVSTORE_REPL_ITERS");
  if (env == nullptr || env[0] == '\0') return 3;
  unsigned long v = std::strtoul(env, nullptr, 10);
  return v == 0 ? 1 : static_cast<uint32_t>(v);
}

bool WaitFor(const std::function<bool()>& cond, uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// Tracks the forked leader; waitpid reaps exactly once, so the exit status
/// is cached on the first non-blocking poll that sees the death.
struct ChildProc {
  pid_t pid = -1;
  bool reaped = false;
  int wstatus = 0;

  bool Alive() {
    if (reaped) return false;
    int ws = 0;
    if (::waitpid(pid, &ws, WNOHANG) == pid) {
      reaped = true;
      wstatus = ws;
    }
    return !reaped;
  }

  int Wait() {
    if (!reaped) {
      reaped = ::waitpid(pid, &wstatus, 0) == pid;
    }
    return wstatus;
  }
};

class FailoverDrillTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(FailoverDrillTest, PromotedFollowerHoldsEveryAckedCommit) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const Scheme scheme = GetParam();
  const uint32_t iters = ItersPerScheme();
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("mvstore_failover_" + std::string(SchemeName(scheme))))
          .string();

  uint32_t crashes = 0;
  uint32_t promoted = 0;
  uint32_t loss_checked = 0;
  uint32_t divergence_checked = 0;
  uint64_t rng = SplitMix(0xfa110fe5ull ^ (static_cast<uint64_t>(scheme) << 32));

  for (uint32_t iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string dir = base + "-" + std::to_string(iter);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir + "/leader", ec);
    std::filesystem::create_directories(dir + "/follower", ec);
    ASSERT_FALSE(ec);

    rng = Lcg(rng);
    const KillSite& site = kKillSites[(rng >> 33) % kNumKillSites];
    rng = Lcg(rng);
    const uint32_t hit = site.min_hit + (rng >> 33) % site.span;
    SCOPED_TRACE(std::string("site ") + site.site + "@" +
                 std::to_string(hit));
    // The mid-tail-batch follower drop + reconnect exercise runs on one
    // designated iteration (arming is parent-side; see below).
    const bool force_reconnect = (iter == iters / 2);

    ChildProc child;
    child.pid = ::fork();
    ASSERT_GE(child.pid, 0);
    if (child.pid == 0) {
      RunLeaderChild(dir, scheme, site, hit, SplitMix(rng ^ iter),
                     /*txns=*/500);
    }

    // Wait for the leader to publish its port; a child killed during its
    // own startup/recovery is a valid (leaderless) outcome.
    const std::string port_path = dir + "/port";
    bool have_port = WaitFor(
        [&] {
          return std::filesystem::exists(port_path) ||
                 !child.Alive();
        },
        15000);
    ASSERT_TRUE(have_port) << "leader neither started nor died";
    if (!std::filesystem::exists(port_path)) {
      const int early = child.Wait();
      ASSERT_TRUE(WIFEXITED(early));
      if (WEXITSTATUS(early) == failpoint::kCrashExitCode) ++crashes;
      std::filesystem::remove_all(dir, ec);
      continue;
    }
    uint16_t port = 0;
    {
      std::ifstream in(port_path);
      int v = 0;
      in >> v;
      port = static_cast<uint16_t>(v);
    }
    ASSERT_NE(port, 0);

    // Live follower in this process.
    std::atomic<bool> attached{false};
    ReplicaOptions ropts;
    ropts.db = MakeFollowerOptions(dir, scheme);
    ropts.define_schema = DefineSchema;
    ropts.leader_port = port;
    ropts.reconnect_ms = 20;
    ropts.heartbeat_timeout_ms = 1500;
    ropts.on_first_attach = [&attached] { attached.store(true); };
    Status st;
    std::unique_ptr<Replica> replica = Replica::Open(ropts, &st);
    ASSERT_NE(replica, nullptr) << st.ToString();

    const bool child_outlived_attach = WaitFor(
        [&] {
          return replica->ready() || replica->failed() ||
                 !child.Alive();
        },
        30000);
    ASSERT_TRUE(child_outlived_attach);
    ASSERT_FALSE(replica->failed()) << "fresh bootstrap must not fail";

    // Coverage window: from the last confirmed attach to the leader's
    // death, every ack was follower-coupled — provided the stream never
    // dropped in between, i.e. attaches() holds at its confirmed value
    // (reconnects() cannot serve here: it keeps growing while the replica
    // re-dials the dead leader).
    uint64_t expected_attaches = replica->attaches();

    // Session-layer reads at the replayed snapshot while the leader churns.
    ServerCore core(replica->db());
    core.SetReplica(replica.get());
    LoopbackTransport transport(core);
    MVClient client(transport);
    uint64_t last_watermark = 0;
    bool write_refused = false;
    if (replica->ready()) {
      for (int readpass = 0; readpass < 20; ++readpass) {
        if (!child.Alive()) break;
        const uint64_t wm = replica->replayed_ts();
        EXPECT_GE(wm, last_watermark) << "replayed_ts went backwards";
        last_watermark = wm;
        ASSERT_TRUE(
            client.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true)
                .ok());
        for (uint64_t key = 1; key <= 8; ++key) {
          Row row{};
          Status gs = client.Get(kTable, 0, key, &row, sizeof(row));
          if (gs.IsNotFound()) continue;
          ASSERT_TRUE(gs.ok()) << gs.ToString();
          EXPECT_EQ(row.checksum, RowChecksum(row.key, row.version))
              << "snapshot read saw a torn row";
        }
        ASSERT_TRUE(client.Commit().ok());
        if (!write_refused) {
          ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
          Row nrow{kKeys + 100, 1, RowChecksum(kKeys + 100, 1)};
          EXPECT_TRUE(client.Insert(kTable, &nrow, sizeof(nrow)).IsReadOnly());
          ASSERT_TRUE(client.Commit().ok());
          write_refused = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }

    if (force_reconnect && replica->ready() && child.Alive()) {
      // Drop the stream mid-tail-batch, then require a full re-attach under
      // live load before the kill lands.
      const uint64_t before = failpoint::Hits("repl.tail.recv");
      failpoint::Action err;
      err.kind = failpoint::ActionKind::kError;
      err.hit = 1;
      failpoint::Arm("repl.tail.recv", err);
      WaitFor(
          [&] {
            return failpoint::Hits("repl.tail.recv") > before ||
                   !child.Alive();
          },
          15000);
      failpoint::Disarm("repl.tail.recv");
      // Confirm re-attach: a tail batch applied with the reconnect count
      // stable again.
      const uint64_t applied = replica->batches_applied();
      if (WaitFor(
              [&] {
                return (replica->batches_applied() > applied &&
                        !replica->failed()) ||
                       !child.Alive();
              },
              30000) &&
          replica->batches_applied() > applied) {
        expected_attaches = replica->attaches();
      } else {
        expected_attaches = ~uint64_t{0};  // never confirmed: not provable
      }
    }

    // Let the leader die (or finish its budget).
    const int final_status = child.Wait();
    ASSERT_TRUE(child.reaped);
    ASSERT_TRUE(WIFEXITED(final_status))
        << "leader died abnormally: " << final_status;
    const int code = WEXITSTATUS(final_status);
    ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
        << "leader exit code " << code;
    if (code == failpoint::kCrashExitCode) ++crashes;

    // The stream is dead; the mirror is static once the replica notices.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const bool provable = attached.load() && !replica->failed() &&
                          replica->attaches() == expected_attaches;

    if (!attached.load()) {
      // Leader died before the follower ever attached: nothing to promote
      // against; the chaos suite covers the leader's own recovery.
      replica->Stop();
      core.SetReplica(nullptr);
      std::filesystem::remove_all(dir, ec);
      continue;
    }

    // Divergence input: copy the mirror BEFORE promote seals its tail.
    const std::string serial_dir = dir + "/serial";
    std::filesystem::create_directories(serial_dir, ec);
    std::filesystem::copy(dir + "/follower", serial_dir,
                          std::filesystem::copy_options::recursive, ec);
    ASSERT_FALSE(ec) << "mirror copy failed";

    ASSERT_TRUE(replica->Promote(/*force=*/false).ok());
    ++promoted;
    EXPECT_TRUE(replica->writable());

    std::map<uint64_t, Row> rows;
    ASSERT_TRUE(ScanRows(replica->db(), &rows));

    if (provable) {
      std::vector<AckRec> acks;
      LoadAcks(dir + "/acks.bin", &acks);
      EXPECT_TRUE(VerifyAcksAgainst(rows, acks))
          << "acked commits: " << acks.size();
      ++loss_checked;
    }

    // Divergence: ordinary serial crash recovery of the mirror copy must
    // reconstruct the exact table the promote produced.
    {
      DatabaseOptions serial = MakeFollowerOptions(dir, scheme);
      serial.log_path = serial_dir + "/wal";
      serial.checkpoint_path = serial_dir + "/ckpt";
      serial.recovery_threads = 1;
      Status sst;
      auto serial_db = Database::Open(serial, DefineSchema, &sst);
      ASSERT_NE(serial_db, nullptr) << sst.ToString();
      std::map<uint64_t, Row> serial_rows;
      ASSERT_TRUE(ScanRows(*serial_db, &serial_rows));
      ASSERT_EQ(serial_rows.size(), rows.size())
          << "serial replay and promote disagree on row count";
      for (const auto& [key, row] : rows) {
        auto it = serial_rows.find(key);
        ASSERT_NE(it, serial_rows.end()) << "key " << key;
        EXPECT_EQ(it->second.version, row.version) << "key " << key;
        EXPECT_EQ(it->second.checksum, row.checksum) << "key " << key;
      }
      ++divergence_checked;
    }

    // The same session now accepts writes: failover is complete.
    ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
    Row nrow{kKeys + 200, 1, RowChecksum(kKeys + 200, 1)};
    ASSERT_TRUE(client.Insert(kTable, &nrow, sizeof(nrow)).ok());
    ASSERT_TRUE(client.Commit().ok());

    core.SetReplica(nullptr);
    replica.reset();
    std::filesystem::remove_all(dir, ec);
  }

  // The run must have exercised the real thing: leaders killed mid-flight,
  // followers promoted, and the zero-loss + divergence checks actually run.
  EXPECT_GT(crashes, 0u) << "no leader was killed; hit counts too high?";
  EXPECT_GT(promoted, 0u) << "no follower was ever promoted";
  EXPECT_GT(loss_checked, 0u) << "zero-loss was never provably checked";
  EXPECT_GT(divergence_checked, 0u);
  RecordProperty("crashes", static_cast<int>(crashes));
  RecordProperty("promoted", static_cast<int>(promoted));
  RecordProperty("loss_checked", static_cast<int>(loss_checked));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FailoverDrillTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return "SingleVersion";
                             case Scheme::kMultiVersionLocking:
                               return "MultiVersionLocking";
                             default:
                               return "MultiVersionOptimistic";
                           }
                         });

#else  // !__linux__

TEST(FailoverDrillTest, SkippedOnNonLinux) {
  GTEST_SKIP() << "replication is Linux-only";
}

#endif

}  // namespace
}  // namespace mvstore
