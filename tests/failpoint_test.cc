// Failpoint subsystem tests: spec parsing, hit thresholds, one-in-K
// determinism, delay actions, crash exit codes, and the unarmed fast path.
#include "common/failpoint.h"

#include <chrono>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace mvstore {
namespace failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, CompiledInForTestBuilds) {
  // The test suites are always built with failpoints on; bench builds turn
  // them off (scripts/bench_report.sh enforces that side).
  EXPECT_TRUE(CompiledIn());
}

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(MVSTORE_FAILPOINT("test.unarmed"));
  }
  EXPECT_EQ(Hits("test.unarmed"), 0u);
}

TEST_F(FailpointTest, ErrorActionFiresAndCountsHits) {
  Action action;
  action.kind = ActionKind::kError;
  Arm("test.err", action);
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.err"));
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.err"));
  EXPECT_EQ(Hits("test.err"), 2u);
  // Other sites stay unaffected while one is armed.
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.other"));
  Disarm("test.err");
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.err"));
}

TEST_F(FailpointTest, HitThresholdSkipsEarlyEvaluations) {
  ASSERT_TRUE(ArmSpec("test.hit=error@3"));
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.hit"));  // hit 1
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.hit"));  // hit 2
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.hit"));   // hit 3: fires
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.hit"));   // and keeps firing
  EXPECT_EQ(Hits("test.hit"), 4u);
}

TEST_F(FailpointTest, RearmingResetsHitCount) {
  ASSERT_TRUE(ArmSpec("test.rearm=error@2"));
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.rearm"));
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.rearm"));
  ASSERT_TRUE(ArmSpec("test.rearm=error@2"));
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.rearm"));  // counts restarted
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.rearm"));
}

TEST_F(FailpointTest, OneInKIsDeterministicAndRoughlyCalibrated) {
  std::vector<std::vector<bool>> patterns;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(ArmSpec("test.prob=error%4"));
    std::vector<bool> fired;
    for (int i = 0; i < 400; ++i) {
      fired.push_back(MVSTORE_FAILPOINT("test.prob"));
    }
    Disarm("test.prob");
    int count = 0;
    for (bool f : fired) count += f ? 1 : 0;
    // ~1/4 of 400; generous bounds, but never zero and never always.
    EXPECT_GT(count, 40);
    EXPECT_LT(count, 260);
    patterns.push_back(std::move(fired));
  }
  EXPECT_EQ(patterns[0], patterns[1]);  // same seed -> same firing pattern

  // An explicit seed changes the stream but stays self-reproducible.
  Action action;
  action.kind = ActionKind::kError;
  action.one_in = 4;
  action.seed = 123;
  Arm("test.prob", action);
  std::vector<bool> seeded;
  for (int i = 0; i < 400; ++i) {
    seeded.push_back(MVSTORE_FAILPOINT("test.prob"));
  }
  EXPECT_NE(seeded, patterns[0]);
}

TEST_F(FailpointTest, DelayActionSleepsAndReturnsFalse) {
  ASSERT_TRUE(ArmSpec("test.delay=delay(60)"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.delay"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 50);
}

TEST_F(FailpointTest, OffActionDisarms) {
  ASSERT_TRUE(ArmSpec("test.off=error"));
  EXPECT_TRUE(MVSTORE_FAILPOINT("test.off"));
  ASSERT_TRUE(ArmSpec("test.off=off"));
  EXPECT_FALSE(MVSTORE_FAILPOINT("test.off"));
  EXPECT_TRUE(ArmedSites().empty());
}

TEST_F(FailpointTest, ArmSpecParsesMultipleClauses) {
  ASSERT_TRUE(ArmSpec("test.a=error@2;test.b=delay(5);test.c=error%7"));
  std::vector<std::string> sites = ArmedSites();
  EXPECT_EQ(sites.size(), 3u);
  DisarmAll();
  EXPECT_TRUE(ArmedSites().empty());
}

TEST_F(FailpointTest, ArmSpecRejectsMalformedSpecs) {
  const char* bad[] = {
      "noequals",          "=error",           "site=bogus",
      "site=error@",       "site=error%",      "site=delay",
      "site=delay(",       "site=delay(12",    "site=error@12junk",
      "site=error junk",
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(ArmSpec(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  // Nothing should be left armed by the failed specs above.
  EXPECT_TRUE(ArmedSites().empty());
}

#if !defined(_WIN32)
TEST_F(FailpointTest, CrashActionExitsWithCrashCode) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Action action;
    action.kind = ActionKind::kCrash;
    action.hit = 2;
    Arm("test.crash", action);
    if (MVSTORE_FAILPOINT("test.crash")) _exit(7);  // hit 1: must not fire
    (void)MVSTORE_FAILPOINT("test.crash");          // hit 2: _Exit(42)
    _exit(8);                                       // unreachable on success
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), kCrashExitCode);
}
#endif

}  // namespace
}  // namespace failpoint
}  // namespace mvstore
