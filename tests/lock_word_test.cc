// Bit-level tests of the Begin/End word encodings (paper Sections 2.3,
// 4.1.1). Every field boundary is exercised.
#include "storage/lock_word.h"

#include <gtest/gtest.h>

namespace mvstore {
namespace {

TEST(BeginWordTest, TimestampRoundTrip) {
  for (Timestamp ts : {Timestamp{0}, Timestamp{1}, Timestamp{123456789},
                       kInfinity}) {
    uint64_t w = beginword::MakeTimestamp(ts);
    EXPECT_FALSE(beginword::IsTxnId(w));
    EXPECT_EQ(beginword::TimestampOf(w), ts);
  }
}

TEST(BeginWordTest, TxnIdRoundTrip) {
  for (TxnId id : {TxnId{1}, TxnId{42}, kMaxTxnId}) {
    uint64_t w = beginword::MakeTxnId(id);
    EXPECT_TRUE(beginword::IsTxnId(w));
    EXPECT_EQ(beginword::TxnIdOf(w), id);
  }
}

TEST(BeginWordTest, TimestampAndTxnIdSpacesDisjoint) {
  EXPECT_NE(beginword::MakeTimestamp(5), beginword::MakeTxnId(5));
}

TEST(LockWordTest, TimestampForm) {
  uint64_t w = lockword::MakeTimestamp(kInfinity);
  EXPECT_FALSE(lockword::IsLockWord(w));
  EXPECT_EQ(lockword::TimestampOf(w), kInfinity);
}

TEST(LockWordTest, LockWordFields) {
  uint64_t w = lockword::MakeLockWord(17, 999);
  EXPECT_TRUE(lockword::IsLockWord(w));
  EXPECT_EQ(lockword::ReadCountOf(w), 17u);
  EXPECT_EQ(lockword::WriterOf(w), 999u);
  EXPECT_FALSE(lockword::NoMoreReadLocks(w));
  EXPECT_TRUE(lockword::HasWriter(w));
}

TEST(LockWordTest, NoWriterSentinel) {
  uint64_t w = lockword::MakeLockWord(3, lockword::kNoWriter);
  EXPECT_FALSE(lockword::HasWriter(w));
  EXPECT_EQ(lockword::WriterOf(w), lockword::kNoWriter);
}

TEST(LockWordTest, NoMoreReadLocksFlag) {
  uint64_t w = lockword::MakeLockWord(0, 7, /*no_more_read_locks=*/true);
  EXPECT_TRUE(lockword::NoMoreReadLocks(w));
  EXPECT_EQ(lockword::ReadCountOf(w), 0u);
  EXPECT_EQ(lockword::WriterOf(w), 7u);
}

TEST(LockWordTest, MaxReadCount) {
  uint64_t w = lockword::MakeLockWord(lockword::kMaxReadLocks, 1);
  EXPECT_EQ(lockword::ReadCountOf(w), 255u);
  EXPECT_EQ(lockword::WriterOf(w), 1u);
}

TEST(LockWordTest, MaxTxnIdFitsInWriterField) {
  uint64_t w = lockword::MakeLockWord(255, kMaxTxnId, true);
  EXPECT_EQ(lockword::WriterOf(w), kMaxTxnId);
  EXPECT_EQ(lockword::ReadCountOf(w), 255u);
  EXPECT_TRUE(lockword::NoMoreReadLocks(w));
}

TEST(LockWordTest, WithReadCountPreservesOtherFields) {
  uint64_t w = lockword::MakeLockWord(5, 123, true);
  uint64_t w2 = lockword::WithReadCount(w, 6);
  EXPECT_EQ(lockword::ReadCountOf(w2), 6u);
  EXPECT_EQ(lockword::WriterOf(w2), 123u);
  EXPECT_TRUE(lockword::NoMoreReadLocks(w2));
}

TEST(LockWordTest, WithWriterPreservesOtherFields) {
  uint64_t w = lockword::MakeLockWord(9, 123);
  uint64_t w2 = lockword::WithWriter(w, lockword::kNoWriter);
  EXPECT_EQ(lockword::ReadCountOf(w2), 9u);
  EXPECT_FALSE(lockword::HasWriter(w2));
}

TEST(LockWordTest, FieldsDoNotOverlap) {
  // Setting each field to its max must not bleed into the others.
  uint64_t w = lockword::MakeLockWord(0, 0);
  w = lockword::WithReadCount(w, 255);
  EXPECT_EQ(lockword::WriterOf(w), 0u);
  w = lockword::WithWriter(w, kMaxTxnId);
  EXPECT_EQ(lockword::ReadCountOf(w), 255u);
  EXPECT_FALSE(lockword::NoMoreReadLocks(w));
}

TEST(LockWordTest, InfinityIsLargestTimestamp) {
  EXPECT_EQ(kInfinity, (uint64_t{1} << 63) - 1);
  EXPECT_FALSE(lockword::IsLockWord(lockword::MakeTimestamp(kInfinity)));
}

}  // namespace
}  // namespace mvstore
