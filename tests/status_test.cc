#include "common/status.h"

#include <gtest/gtest.h>

namespace mvstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(s.IsAborted());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, AbortedCarriesReason) {
  Status s = Status::Aborted(AbortReason::kWriteWriteConflict);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kWriteWriteConflict);
  EXPECT_EQ(s.ToString(), "Aborted(WriteWriteConflict)");
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound();
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.abort_reason(), AbortReason::kNone);
}

TEST(StatusTest, AlreadyExists) {
  Status s = Status::AlreadyExists();
  EXPECT_TRUE(s.IsAlreadyExists());
  EXPECT_EQ(s.ToString(), "AlreadyExists");
}

TEST(StatusTest, Unavailable) {
  Status s = Status::Unavailable();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kNone);
  EXPECT_EQ(s.ToString(), "Unavailable");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Aborted(AbortReason::kPhantom),
            Status::Aborted(AbortReason::kPhantom));
  EXPECT_FALSE(Status::Aborted(AbortReason::kPhantom) ==
               Status::Aborted(AbortReason::kCascading));
}

TEST(StatusTest, AllAbortReasonsHaveNames) {
  for (uint8_t r = 0; r <= static_cast<uint8_t>(AbortReason::kUserRequested);
       ++r) {
    EXPECT_STRNE(AbortReasonName(static_cast<AbortReason>(r)), "Unknown");
  }
}

}  // namespace
}  // namespace mvstore
