// Ordered secondary index: skip-list structure, versioned range scans
// through both engines, and node lifecycle (drained nodes leave the tower
// and their slots recycle).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "cc/mv_engine.h"
#include "core/database.h"
#include "storage/ordered_index.h"
#include "storage/table.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;     // primary
  uint64_t group;   // ordered secondary
  int64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }
uint64_t RowGroup(const void* p) { return static_cast<const Row*>(p)->group; }

TableDef TwoIndexDef() {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 256, /*unique=*/true});
  IndexDef ordered{&RowGroup, 256, /*unique=*/false};
  ordered.ordered = true;
  def.indexes.push_back(ordered);
  return def;
}

/// ---------------------------------------------------------------------------
/// Raw OrderedIndex unit tests (single-threaded: no epoch manager)
/// ---------------------------------------------------------------------------

class RawOrderedIndexTest : public ::testing::Test {
 protected:
  RawOrderedIndexTest()
      : table_(0, TwoIndexDef(), TableMemoryOptions{/*use_slab=*/true,
                                                    nullptr, nullptr}) {}

  Version* Put(uint64_t key, uint64_t group) {
    Row row{key, group, 0};
    Version* v = table_.AllocateVersion(&row);
    table_.InsertIntoAllIndexes(v);
    versions_.push_back(v);
    return v;
  }

  ~RawOrderedIndexTest() override {
    for (Version* v : versions_) {
      table_.UnlinkFromAllIndexes(v);
      table_.FreeUnpublishedVersion(v);
    }
  }

  std::vector<uint64_t> ScanGroups(uint64_t lo, uint64_t hi) {
    std::vector<uint64_t> out;
    table_.ordered_index(1)->ScanRange(lo, hi, [&](Version* v) {
      out.push_back(RowGroup(v->Payload()));
      return true;
    });
    return out;
  }

  Table table_;
  std::vector<Version*> versions_;
};

TEST(OrderedIndexDeathTest, OrderedPrimaryIndexIsRejected) {
  // Rejection must hold in Release builds too (not assert-only): a null
  // primary hash slot would otherwise crash far from the misdeclared
  // TableDef.
  TableDef def;
  def.name = "bad";
  def.payload_size = sizeof(Row);
  IndexDef primary{&RowKey, 256, /*unique=*/true};
  primary.ordered = true;
  def.indexes.push_back(primary);
  EXPECT_DEATH(Table(0, std::move(def)), "primary index");
}

TEST_F(RawOrderedIndexTest, RangeScanIsSortedAndBounded) {
  // Insert out of order.
  for (uint64_t g : {50u, 10u, 90u, 30u, 70u, 20u, 80u, 40u, 60u}) {
    Put(g, g);
  }
  std::vector<uint64_t> all = ScanGroups(0, 100);
  EXPECT_EQ(all, (std::vector<uint64_t>{10, 20, 30, 40, 50, 60, 70, 80, 90}));
  EXPECT_EQ(ScanGroups(25, 65), (std::vector<uint64_t>{30, 40, 50, 60}));
  EXPECT_EQ(ScanGroups(30, 30), (std::vector<uint64_t>{30}));
  EXPECT_TRUE(ScanGroups(91, 100).empty());
  EXPECT_TRUE(ScanGroups(0, 9).empty());
}

TEST_F(RawOrderedIndexTest, DuplicateKeysShareOneNode) {
  Put(1, 7);
  Put(2, 7);
  Put(3, 7);
  OrderedIndex* index = table_.ordered_index(1);
  EXPECT_EQ(index->CountNodes(), 1u);
  EXPECT_EQ(index->CountEntries(), 3u);
  std::set<uint64_t> primaries;
  index->ScanKey(7, [&](Version* v) {
    primaries.insert(RowKey(v->Payload()));
    return true;
  });
  EXPECT_EQ(primaries, (std::set<uint64_t>{1, 2, 3}));
}

TEST_F(RawOrderedIndexTest, DrainedNodesLeaveTheTower) {
  Version* a = Put(1, 5);
  Version* b = Put(2, 5);
  Put(3, 6);
  OrderedIndex* index = table_.ordered_index(1);
  EXPECT_EQ(index->CountNodes(), 2u);

  EXPECT_TRUE(index->Unlink(a));
  EXPECT_EQ(index->CountNodes(), 2u);  // chain for 5 still holds b
  EXPECT_TRUE(index->Unlink(b));
  EXPECT_EQ(index->CountNodes(), 1u);  // node 5 drained and removed
  EXPECT_FALSE(index->Unlink(b));      // double unlink: not found

  EXPECT_EQ(ScanGroups(0, 100), std::vector<uint64_t>{6});

  // Re-inserting the key builds a fresh node.
  Put(4, 5);
  EXPECT_EQ(index->CountNodes(), 2u);
  EXPECT_EQ(ScanGroups(5, 5), std::vector<uint64_t>{5});

  // Keep the destructor's bookkeeping consistent: fully unlink a and b
  // (the ordered part no-ops) before freeing them.
  table_.UnlinkFromAllIndexes(a);
  table_.UnlinkFromAllIndexes(b);
  table_.FreeUnpublishedVersion(a);
  table_.FreeUnpublishedVersion(b);
  versions_.erase(versions_.begin(), versions_.begin() + 2);
}

/// ---------------------------------------------------------------------------
/// Database-level range scans, all three schemes
/// ---------------------------------------------------------------------------

class RangeScanTest : public ::testing::TestWithParam<Scheme> {
 protected:
  RangeScanTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    db_ = std::make_unique<Database>(opts);
    table_ = db_->CreateTable(TwoIndexDef());
  }

  void Put(uint64_t key, uint64_t group, int64_t value) {
    ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      Row row{key, group, value};
                                      return db_->Insert(t, table_, &row);
                                    })
                    .ok());
  }

  std::vector<uint64_t> ScanGroups(uint64_t lo, uint64_t hi,
                                   IsolationLevel iso) {
    std::vector<uint64_t> out;
    Status s = db_->RunTransaction(iso, [&](Txn* t) {
      out.clear();
      return db_->ScanRange(t, table_, 1, lo, hi, nullptr,
                            [&](const void* p) {
                              out.push_back(RowGroup(p));
                              return true;
                            });
    });
    EXPECT_TRUE(s.ok());
    return out;
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(RangeScanTest, ReturnsCommittedRowsInOrder) {
  for (uint64_t g : {40u, 10u, 30u, 20u, 50u}) Put(g, g, 1);
  EXPECT_EQ(ScanGroups(0, 100, IsolationLevel::kReadCommitted),
            (std::vector<uint64_t>{10, 20, 30, 40, 50}));
  EXPECT_EQ(ScanGroups(15, 35, IsolationLevel::kSerializable),
            (std::vector<uint64_t>{20, 30}));
}

TEST_P(RangeScanTest, ResidualAndEarlyStopHonored) {
  for (uint64_t g = 0; g < 20; ++g) Put(g, g, static_cast<int64_t>(g % 2));
  std::vector<uint64_t> odd;
  ASSERT_TRUE(db_->RunTransaction(
                     IsolationLevel::kReadCommitted,
                     [&](Txn* t) {
                       odd.clear();
                       return db_->ScanRange(
                           t, table_, 1, 0, 19,
                           [](const void* p) {
                             return static_cast<const Row*>(p)->value == 1;
                           },
                           [&](const void* p) {
                             odd.push_back(RowGroup(p));
                             return odd.size() < 3;
                           });
                     })
                  .ok());
  EXPECT_EQ(odd, (std::vector<uint64_t>{1, 3, 5}));
}

TEST_P(RangeScanTest, HashIndexRejectsRangeScan) {
  Put(1, 1, 1);
  Txn* t = db_->Begin(IsolationLevel::kReadCommitted);
  Status s = db_->ScanRange(t, table_, 0, 0, 10, nullptr,
                            [](const void*) { return true; });
  EXPECT_TRUE(s.IsInvalidArgument());
  db_->Abort(t);
}

TEST_P(RangeScanTest, UncommittedAndDeletedRowsExcluded) {
  if (GetParam() == Scheme::kSingleVersion) {
    GTEST_SKIP() << "1V scans block on uncommitted writers instead";
  }
  Put(1, 10, 0);
  Put(2, 20, 0);
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Delete(t, table_, 0, 2);
                }).ok());
  Txn* pending = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{3, 30, 0};
  ASSERT_TRUE(db_->Insert(pending, table_, &row).ok());

  EXPECT_EQ(ScanGroups(0, 100, IsolationLevel::kReadCommitted),
            std::vector<uint64_t>{10});
  db_->Abort(pending);
}

TEST_P(RangeScanTest, SecondaryPointOpsThroughOrderedIndex) {
  Put(1, 10, 5);
  // Read / update / delete addressed by the ordered secondary key.
  Row out{};
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Read(t, table_, 1, 10, &out);
                }).ok());
  EXPECT_EQ(out.key, 1u);
  EXPECT_EQ(out.value, 5);

  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Update(t, table_, 1, 10, [](void* p) {
                    static_cast<Row*>(p)->value = 6;
                  });
                }).ok());
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Read(t, table_, 0, 1, &out);
                }).ok());
  EXPECT_EQ(out.value, 6);

  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Delete(t, table_, 1, 10);
                }).ok());
  Status s = db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
    return db_->Read(t, table_, 0, 1, &out);
  });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_P(RangeScanTest, UpdatesMoveRowsBetweenGroups) {
  if (GetParam() == Scheme::kSingleVersion) {
    GTEST_SKIP() << "1V updates in place and must not change index keys";
  }
  Put(1, 10, 0);
  // MV update that moves the row to group 42: the new version lands in the
  // new node, the old one ages out of group 10.
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Update(t, table_, 0, 1, [](void* p) {
                    static_cast<Row*>(p)->group = 42;
                  });
                }).ok());
  EXPECT_EQ(ScanGroups(0, 100, IsolationLevel::kReadCommitted),
            std::vector<uint64_t>{42});
}

/// Regression: a 1V range scan discovers rows from the skip list *before*
/// taking their key locks, so a scan that waits out an inserter's X lock
/// must re-validate membership after the lock is granted — an aborted
/// insert (or committed delete) unlinks the row while the scanner waits,
/// and the scan must not emit it.
TEST(SVRangeScanRaceTest, AbortedInsertInvisibleToWaitingRangeScan) {
  DatabaseOptions opts;
  opts.scheme = Scheme::kSingleVersion;
  opts.log_mode = LogMode::kDisabled;
  opts.lock_timeout_us = 1000000;  // scanner waits instead of timing out
  Database db(opts);
  TableId table = db.CreateTable(TwoIndexDef());
  for (uint64_t g : {10u, 30u}) {
    Row row{g, g, 0};
    ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                  [&](Txn* t) {
                                    return db.Insert(t, table, &row);
                                  })
                    .ok());
  }

  Txn* inserter = db.Begin(IsolationLevel::kReadCommitted);
  Row phantom{2, 20, 0};
  ASSERT_TRUE(db.Insert(inserter, table, &phantom).ok());  // X-locks key 20

  std::vector<uint64_t> seen;
  std::thread scanner([&] {
    Status s = db.RunTransaction(IsolationLevel::kRepeatableRead, [&](Txn* t) {
      seen.clear();
      return db.ScanRange(t, table, 1, 0, 100, nullptr, [&](const void* p) {
        seen.push_back(RowGroup(p));
        return true;
      });
    });
    EXPECT_TRUE(s.ok());
  });
  // Let the scanner reach the inserter's lock, then abort the insert: the
  // row is unlinked while the scanner waits on it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  db.Abort(inserter);
  scanner.join();
  EXPECT_EQ(seen, (std::vector<uint64_t>{10, 30}));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RangeScanTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
