// Service layer end-to-end: interactive transactions and pipelined batches
// over loopback sessions, whole-txn TATP procedures, admission control and
// pipeline backpressure (kUnavailable semantics), drain-on-shutdown
// durability (committed work survives reopen), group-commit fsync
// amortization, and a real-socket smoke through the epoll server.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/tcp_transport.h"
#include "core/database.h"
#include "server/loopback.h"
#include "server/mv_server.h"
#include "server/server_core.h"
#include "workload/tatp.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};

uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TableId MakeRowTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 1024, true});
  // Ordered secondary over the same key (updates mutate only `value`, so
  // in-place 1V updates never change an index key).
  IndexDef by_key_ordered{&RowKey, 1024, false};
  by_key_ordered.ordered = true;
  def.indexes.push_back(by_key_ordered);
  return db.CreateTable(def);
}

const Scheme kAllSchemes[] = {Scheme::kSingleVersion,
                              Scheme::kMultiVersionLocking,
                              Scheme::kMultiVersionOptimistic};

std::unique_ptr<MVClient> ConnectLoopback(LoopbackTransport& transport,
                                          Status* status = nullptr) {
  auto conn = transport.Connect(status);
  if (conn == nullptr) return nullptr;
  return std::make_unique<MVClient>(std::move(conn));
}

TEST(ServerSessionTest, InteractiveTxnAcrossRoundTrips) {
  for (Scheme scheme : kAllSchemes) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    Database db(opts);
    TableId table = MakeRowTable(db);
    ServerCore core(db);
    LoopbackTransport transport(core);
    auto client = ConnectLoopback(transport);
    ASSERT_NE(client, nullptr);

    EXPECT_TRUE(client->Ping().ok());
    ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted).ok());
    Row row{7, 70};
    ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
    // Read-your-writes inside the open transaction, across round trips.
    Row read{};
    ASSERT_TRUE(client->Get(table, 0, 7, &read, sizeof(read)).ok());
    EXPECT_EQ(read.value, 70u);
    ASSERT_TRUE(client->Commit().ok());

    // A second session sees the committed row; update and delete it.
    auto client2 = ConnectLoopback(transport);
    ASSERT_NE(client2, nullptr);
    ASSERT_TRUE(client2->Begin(IsolationLevel::kReadCommitted).ok());
    row.value = 71;
    ASSERT_TRUE(client2->Put(table, 0, 7, &row, sizeof(row)).ok());
    ASSERT_TRUE(client2->Get(table, 0, 7, &read, sizeof(read)).ok());
    EXPECT_EQ(read.value, 71u);
    ASSERT_TRUE(client2->Delete(table, 0, 7).ok());
    EXPECT_TRUE(client2->Get(table, 0, 7, &read, sizeof(read)).IsNotFound());
    ASSERT_TRUE(client2->Commit().ok());
  }
}

TEST(ServerSessionTest, ProtocolStateErrors) {
  Database db{DatabaseOptions{}};
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  // Operations need an open transaction.
  Row row{1, 1};
  EXPECT_TRUE(client->Insert(table, &row, sizeof(row)).IsInvalidArgument());
  EXPECT_TRUE(client->Commit().IsInvalidArgument());
  EXPECT_TRUE(client->Abort().IsInvalidArgument());
  // One interactive transaction per session.
  ASSERT_TRUE(client->Begin(IsolationLevel::kSerializable).ok());
  EXPECT_TRUE(client->Begin(IsolationLevel::kSerializable).IsInvalidArgument());
  // Bad table / index / payload-size are rejected without killing the txn.
  EXPECT_TRUE(client->Insert(99, &row, sizeof(row)).IsInvalidArgument());
  EXPECT_TRUE(client->Insert(table, &row, 3).IsInvalidArgument());
  EXPECT_TRUE(
      client->Get(table, 7, 1, &row, sizeof(row)).IsInvalidArgument());
  EXPECT_TRUE(client->Commit().ok());
  // The connection survived all of it.
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerSessionTest, PipelinedWholeTxnInOneFlush) {
  for (Scheme scheme : kAllSchemes) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    Database db(opts);
    TableId table = MakeRowTable(db);
    ServerCore core(db);
    LoopbackTransport transport(core);
    auto client = ConnectLoopback(transport);
    ASSERT_NE(client, nullptr);

    client->QueueBegin(IsolationLevel::kReadCommitted);
    for (uint64_t k = 0; k < 10; ++k) {
      Row row{k, k * 10};
      client->QueueInsert(table, &row, sizeof(row));
    }
    client->QueueCommit();
    std::vector<WireResult> results;
    ASSERT_TRUE(client->FlushBatch(&results).ok());
    ASSERT_EQ(results.size(), 12u);
    for (const WireResult& r : results) EXPECT_TRUE(r.status.ok());

    // Verify via a pipelined read batch.
    client->QueueBegin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    for (uint64_t k = 0; k < 10; ++k) client->QueueGet(table, 0, k);
    client->QueueCommit();
    results.clear();
    ASSERT_TRUE(client->FlushBatch(&results).ok());
    ASSERT_EQ(results.size(), 12u);
    for (uint64_t k = 0; k < 10; ++k) {
      const WireResult& r = results[1 + k];
      ASSERT_TRUE(r.status.ok());
      Row row{};
      ASSERT_EQ(r.payload.size(), sizeof(row));
      std::memcpy(&row, r.payload.data(), sizeof(row));
      EXPECT_EQ(row.key, k);
      EXPECT_EQ(row.value, k * 10);
    }
  }
}

TEST(ServerSessionTest, ScanRangeOverWire) {
  for (Scheme scheme : kAllSchemes) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    Database db(opts);
    TableId table = MakeRowTable(db);
    ServerCore core(db);
    LoopbackTransport transport(core);
    auto client = ConnectLoopback(transport);
    ASSERT_NE(client, nullptr);

    ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted).ok());
    for (uint64_t k = 20; k-- > 0;) {  // inserted descending, scanned sorted
      Row row{k, 1000 - k};
      ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
    }
    ASSERT_TRUE(client->Commit().ok());

    ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted, true).ok());
    std::vector<std::vector<uint8_t>> rows;
    ASSERT_TRUE(client->ScanRange(table, 1, 5, 15, 100, &rows).ok());
    ASSERT_EQ(rows.size(), 11u);
    uint64_t expect_key = 5;
    for (const auto& bytes : rows) {
      Row row{};
      ASSERT_EQ(bytes.size(), sizeof(row));
      std::memcpy(&row, bytes.data(), sizeof(row));
      EXPECT_EQ(row.key, expect_key);  // ascending key order
      EXPECT_EQ(row.value, 1000 - expect_key);
      ++expect_key;
    }
    ASSERT_TRUE(client->Commit().ok());
    // max_rows caps the scan.
    ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted, true).ok());
    rows.clear();
    ASSERT_TRUE(client->ScanRange(table, 1, 0, 100, 5, &rows).ok());
    EXPECT_EQ(rows.size(), 5u);
    ASSERT_TRUE(client->Commit().ok());
  }
}

TEST(ServerSessionTest, TatpProceduresCommitWholeTxns) {
  for (Scheme scheme : kAllSchemes) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    Database db(opts);
    tatp::TatpDatabase tatp_db = tatp::LoadTatp(db, 500);
    tatp::RegisterTatpProcedures(db, tatp_db);
    ServerCore core(db);
    LoopbackTransport transport(core);
    auto client = ConnectLoopback(transport);
    ASSERT_NE(client, nullptr);

    const uint64_t before = db.stats().Get(Stat::kTxnCommitted);
    uint64_t calls = 0;
    for (uint8_t t = 0;
         t <= static_cast<uint8_t>(tatp::TatpTxnType::kDeleteCallForwarding);
         ++t) {
      uint32_t proc_id = 0;
      ASSERT_TRUE(
          client
              ->Resolve(tatp::TatpProcedureName(
                            static_cast<tatp::TatpTxnType>(t)),
                        &proc_id)
              .ok());
      for (uint64_t seed = 0; seed < 5; ++seed) {
        uint8_t arg[9];
        std::memcpy(arg, &seed, 8);
        arg[8] = static_cast<uint8_t>(IsolationLevel::kReadCommitted);
        Status s = client->Call(proc_id, arg, sizeof(arg));
        // Aborts are legitimate outcomes; anything else must be OK.
        EXPECT_TRUE(s.ok() || s.IsAborted()) << s.ToString();
        if (s.ok()) ++calls;
      }
    }
    // Every successful call committed a whole transaction server-side.
    EXPECT_GE(db.stats().Get(Stat::kTxnCommitted), before + calls);
    EXPECT_TRUE(tatp::CheckConsistency(db, tatp_db));

    // Unknown procedure names and ids are clean failures.
    uint32_t proc_id = 0;
    EXPECT_TRUE(client->Resolve("no.such.proc", &proc_id).IsNotFound());
    EXPECT_TRUE(client->Call(9999, nullptr, 0).IsInvalidArgument());
  }
}

TEST(ServerAdmissionTest, MaxSessionsRefusesWithUnavailable) {
  Database db{DatabaseOptions{}};
  ServerCoreOptions core_opts;
  core_opts.max_sessions = 2;
  ServerCore core(db, core_opts);
  LoopbackTransport transport(core);

  Status status;
  auto c1 = ConnectLoopback(transport, &status);
  ASSERT_NE(c1, nullptr);
  auto c2 = ConnectLoopback(transport, &status);
  ASSERT_NE(c2, nullptr);
  auto c3 = ConnectLoopback(transport, &status);
  EXPECT_EQ(c3, nullptr);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(core.sessions_refused.load(), 1u);

  // Freeing a slot re-admits.
  c1.reset();
  EXPECT_EQ(core.active_sessions(), 1u);
  auto c4 = ConnectLoopback(transport, &status);
  EXPECT_NE(c4, nullptr);
}

TEST(ServerAdmissionTest, PipelineOverflowAnswersUnavailable) {
  Database db{DatabaseOptions{}};
  ServerCoreOptions core_opts;
  core_opts.max_pipeline = 4;
  ServerCore core(db, core_opts);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  // 7 requests in one burst: 4 admitted, 3 answered kUnavailable — one
  // response per request, so the pipeline stays aligned.
  for (int i = 0; i < 7; ++i) client->QueuePing();
  std::vector<WireResult> results;
  ASSERT_TRUE(client->FlushBatch(&results).ok());
  ASSERT_EQ(results.size(), 7u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(results[i].status.ok());
  for (int i = 4; i < 7; ++i) {
    EXPECT_TRUE(results[i].status.IsUnavailable()) << i;
  }
  EXPECT_EQ(core.requests_unavailable.load(), 3u);

  // Draining the responses re-arms the budget: the next burst succeeds.
  for (int i = 0; i < 4; ++i) client->QueuePing();
  results.clear();
  ASSERT_TRUE(client->FlushBatch(&results).ok());
  for (const WireResult& r : results) EXPECT_TRUE(r.status.ok());
}

TEST(ServerAdmissionTest, OverflowInsideTxnAbortsIt) {
  // A Begin + N ops + Commit burst whose tail overflows the pipeline must
  // never commit a partial write set: the refusal aborts the open
  // transaction, so the (admitted or refused) Commit cannot persist the
  // admitted prefix.
  Database db{DatabaseOptions{}};
  TableId table = MakeRowTable(db);
  ServerCoreOptions core_opts;
  core_opts.max_pipeline = 4;
  ServerCore core(db, core_opts);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  client->QueueBegin(IsolationLevel::kReadCommitted);
  for (uint64_t k = 0; k < 6; ++k) {
    Row row{k, k};
    client->QueueInsert(table, &row, sizeof(row));
  }
  client->QueueCommit();  // 8 frames; 4 admitted (Begin + 3 inserts)
  std::vector<WireResult> results;
  ASSERT_TRUE(client->FlushBatch(&results).ok());
  ASSERT_EQ(results.size(), 8u);
  EXPECT_TRUE(results[0].status.ok());
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(results[i].status.IsUnavailable()) << i;
  }
  // Nothing from the torn burst is visible: the whole txn rolled back.
  ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted, true).ok());
  Row read{};
  for (uint64_t k = 0; k < 6; ++k) {
    EXPECT_TRUE(client->Get(table, 0, k, &read, sizeof(read)).IsNotFound());
  }
  ASSERT_TRUE(client->Commit().ok());
  EXPECT_GE(db.stats().Get(Stat::kTxnAborted), 1u);  // the torn burst's txn
}

TEST(ServerSessionTest, ScanResponseNeverOutgrowsFrameLimit) {
  // A successful scan must stop before its response frame could exceed
  // wire::kMaxFrameBody — an oversized valid response would be rejected
  // by the client's parser and kill the connection.
  struct WideRow {
    uint64_t key;
    uint8_t pad[2048];
  };
  Database db{DatabaseOptions{}};
  TableDef def;
  def.name = "wide";
  def.payload_size = sizeof(WideRow);
  def.indexes.push_back(IndexDef{
      [](const void* p) { return static_cast<const WideRow*>(p)->key; },
      8192, true});
  IndexDef ordered{
      [](const void* p) { return static_cast<const WideRow*>(p)->key; },
      8192, false};
  ordered.ordered = true;
  def.indexes.push_back(ordered);
  TableId table = db.CreateTable(def);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  constexpr uint64_t kRows = 2000;  // ~4.1 MB of payload > kMaxFrameBody
  ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted).ok());
  for (uint64_t k = 0; k < kRows; ++k) {
    WideRow row{};
    row.key = k;
    ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
  }
  ASSERT_TRUE(client->Commit().ok());

  ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted, true).ok());
  std::vector<std::vector<uint8_t>> rows;
  ASSERT_TRUE(
      client->ScanRange(table, 1, 0, kRows, kRows, &rows).ok());
  EXPECT_LT(rows.size(), kRows);  // truncated by the byte budget...
  EXPECT_GT(rows.size(), 0u);
  ASSERT_TRUE(client->Commit().ok());
  EXPECT_TRUE(client->connected());  // ...and the connection survived
}

TEST(ServerAdmissionTest, DrainRefusesNewWorkLetsInFlightFinish) {
  Database db{DatabaseOptions{}};
  TableId table = MakeRowTable(db);
  tatp::TatpDatabase tatp_db = tatp::LoadTatp(db, 100);
  tatp::RegisterTatpProcedures(db, tatp_db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  // Open a transaction, then start draining underneath it.
  ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted).ok());
  Row row{1, 10};
  ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
  core.BeginDrain();
  // In-flight work finishes: more ops and the commit still succeed.
  row = {2, 20};
  ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
  EXPECT_EQ(core.sessions_with_open_txn(), 1u);
  ASSERT_TRUE(client->Commit().ok());
  EXPECT_EQ(core.sessions_with_open_txn(), 0u);

  // New transactions are refused, interactive and procedural alike.
  EXPECT_TRUE(client->Begin(IsolationLevel::kReadCommitted).IsUnavailable());
  uint32_t proc_id = 0;
  ASSERT_TRUE(client->Resolve("tatp.mixed", &proc_id).ok());
  uint8_t arg[9] = {0};
  EXPECT_TRUE(client->Call(proc_id, arg, sizeof(arg)).IsUnavailable());
  // New sessions are refused.
  Status status;
  EXPECT_EQ(ConnectLoopback(transport, &status), nullptr);
  EXPECT_TRUE(status.IsUnavailable());
  // Reads of already-committed state still work (ping/stats too).
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerStatsTest, ReportsServerAndEngineCounters) {
  Database db{DatabaseOptions{}};
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto client = ConnectLoopback(transport);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->Begin(IsolationLevel::kReadCommitted).ok());
  Row row{1, 1};
  ASSERT_TRUE(client->Insert(table, &row, sizeof(row)).ok());
  ASSERT_TRUE(client->Commit().ok());

  std::string text;
  ASSERT_TRUE(client->Stats(&text).ok());
  EXPECT_NE(text.find("server.sessions_opened=1"), std::string::npos) << text;
  EXPECT_NE(text.find("server.frames_processed="), std::string::npos);
  EXPECT_NE(text.find("txn_committed=1"), std::string::npos) << text;
}

/// CounterSnapshot is the uniform engine-counter shape STATS builds on.
TEST(ServerStatsTest, CounterSnapshotCoversEveryStat) {
  Database db{DatabaseOptions{}};
  auto snapshot = db.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), static_cast<size_t>(Stat::kNumStats));
  bool found = false;
  for (const auto& [name, value] : snapshot) {
    EXPECT_FALSE(name.empty());
    if (name == "log_group_commits") found = true;
  }
  EXPECT_TRUE(found);
}

/// Acceptance: with fsync_log on, group commit performs measurably fewer
/// fsyncs than committed transactions under concurrent sessions.
TEST(ServerGroupCommitTest, FewerFsyncsThanCommits) {
  const std::string path = ::testing::TempDir() + "/server_group_commit.log";
  std::remove(path.c_str());
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kTxnsPerThread = 25;
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  opts.log_mode = LogMode::kSync;  // every commit waits for a durable batch
  opts.log_path = path;
  opts.fsync_log = true;
  opts.group_commit_us = 1000;
  Database db(opts);
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);

  std::vector<std::thread> threads;
  std::atomic<uint32_t> committed{0};
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = ConnectLoopback(transport);
      ASSERT_NE(client, nullptr);
      for (uint32_t i = 0; i < kTxnsPerThread; ++i) {
        client->QueueBegin(IsolationLevel::kReadCommitted);
        Row row{t * 1000 + i, i};
        client->QueueInsert(table, &row, sizeof(row));
        client->QueueCommit();
        std::vector<WireResult> results;
        ASSERT_TRUE(client->FlushBatch(&results).ok());
        if (results.back().status.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t commits = committed.load();
  ASSERT_EQ(commits, kThreads * kTxnsPerThread);
  db.logger().FlushAll();
  // Every flushed batch = one Write+Sync = one fsync here. Coalescing must
  // have grouped concurrent committers: strictly fewer fsyncs than
  // commits, and every commit record accounted for in a counted batch.
  const uint64_t fsyncs = db.stats().Get(Stat::kLogGroupCommits);
  const uint64_t grouped = db.stats().Get(Stat::kLogGroupSizeSum);
  EXPECT_GT(fsyncs, 0u);
  EXPECT_LT(fsyncs, commits);
  EXPECT_EQ(grouped, commits);
  std::remove(path.c_str());
}

/// Acceptance: graceful shutdown drains in-flight sessions; nothing a
/// client saw commit is lost, and a later reopen recovers all of it.
TEST(ServerShutdownTest, DrainedCommitsSurviveReopen) {
  for (Scheme scheme : kAllSchemes) {
    const std::string path = ::testing::TempDir() + "/server_drain_" +
                             std::to_string(static_cast<int>(scheme)) +
                             ".log";
    std::remove(path.c_str());
    constexpr uint64_t kRows = 50;

    auto define_schema = [](Database& d) { MakeRowTable(d); };
    {
      DatabaseOptions opts;
      opts.scheme = scheme;
      opts.log_mode = LogMode::kAsync;
      opts.log_path = path;
      opts.group_commit_us = 200;
      Database db(opts);
      TableId table = MakeRowTable(db);
      ServerOptions srv_opts;
      srv_opts.port = 0;
      MVServer server(db, srv_opts);
      ASSERT_TRUE(server.Start().ok());

      TcpTransport transport("127.0.0.1", server.port());
      Status status;
      auto conn = transport.Connect(&status);
      ASSERT_NE(conn, nullptr) << status.ToString();
      MVClient client(std::move(conn));
      for (uint64_t k = 0; k < kRows; ++k) {
        client.QueueBegin(IsolationLevel::kReadCommitted);
        Row row{k, k + 100};
        client.QueueInsert(table, &row, sizeof(row));
        client.QueueCommit();
        std::vector<WireResult> results;
        ASSERT_TRUE(client.FlushBatch(&results).ok());
        ASSERT_TRUE(results.back().status.ok());
      }
      // Graceful shutdown: drain, flush, close. kAsync means commits were
      // acknowledged before reaching the sink — Stop's log flush is what
      // guarantees they are on disk before the database goes away.
      server.Stop();
    }

    Status open_status;
    auto reopened = Database::Open(
        [&] {
          DatabaseOptions opts;
          opts.scheme = scheme;
          opts.log_mode = LogMode::kAsync;
          opts.log_path = path;
          return opts;
        }(),
        define_schema, &open_status);
    ASSERT_NE(reopened, nullptr) << open_status.ToString();
    Txn* txn = reopened->Begin(IsolationLevel::kReadCommitted, true);
    for (uint64_t k = 0; k < kRows; ++k) {
      Row row{};
      ASSERT_TRUE(reopened->Read(txn, 0, 0, k, &row).ok())
          << SchemeName(scheme) << " row " << k;
      EXPECT_EQ(row.value, k + 100);
    }
    reopened->Commit(txn);
    std::remove(path.c_str());
  }
}

/// Real-socket smoke: the epoll server answers the same protocol the
/// loopback transport does, byte for byte.
TEST(ServerTcpTest, EndToEndOverRealSockets) {
  DatabaseOptions opts;
  Database db(opts);
  TableId table = MakeRowTable(db);
  tatp::TatpDatabase tatp_db = tatp::LoadTatp(db, 200);
  tatp::RegisterTatpProcedures(db, tatp_db);

  ServerOptions srv_opts;
  srv_opts.port = 0;
  srv_opts.workers = 2;
  MVServer server(db, srv_opts);
  Status start = server.Start();
  if (start.IsUnavailable()) GTEST_SKIP() << "MVServer unsupported here";
  ASSERT_TRUE(start.ok());
  ASSERT_NE(server.port(), 0);

  TcpTransport transport("127.0.0.1", server.port());

  // A few concurrent clients, each running interactive + pipelined work.
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Status status;
      auto conn = transport.Connect(&status);
      ASSERT_NE(conn, nullptr) << status.ToString();
      MVClient client(std::move(conn));
      ASSERT_TRUE(client.Ping().ok());
      // Interactive transaction.
      ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
      Row row{t, t * 7};
      ASSERT_TRUE(client.Insert(table, &row, sizeof(row)).ok());
      Row read{};
      ASSERT_TRUE(client.Get(table, 0, t, &read, sizeof(read)).ok());
      EXPECT_EQ(read.value, t * 7);
      ASSERT_TRUE(client.Commit().ok());
      // Pipelined TATP procedure batch.
      uint32_t proc_id = 0;
      ASSERT_TRUE(client.Resolve("tatp.mixed", &proc_id).ok());
      for (uint64_t i = 0; i < 32; ++i) {
        uint8_t arg[9] = {0};
        uint64_t seed = t * 100 + i;
        std::memcpy(arg, &seed, 8);
        client.QueueCall(proc_id, arg, sizeof(arg));
      }
      std::vector<WireResult> results;
      ASSERT_TRUE(client.FlushBatch(&results).ok());
      ASSERT_EQ(results.size(), 32u);
      for (const WireResult& r : results) {
        EXPECT_TRUE(r.status.ok() || r.status.IsAborted());
      }
    });
  }
  for (auto& th : threads) th.join();

  // Malformed bytes over a real socket kill only that connection.
  {
    Status status;
    auto conn = transport.Connect(&status);
    ASSERT_NE(conn, nullptr);
    std::vector<uint8_t> garbage(32, 0xAB);
    ASSERT_TRUE(conn->Send(garbage.data(), garbage.size()));
    wire::FrameParser parser;
    wire::Frame frame;
    uint8_t chunk[512];
    wire::FrameParser::Result r = wire::FrameParser::Result::kNeedMore;
    while (r == wire::FrameParser::Result::kNeedMore) {
      size_t n = conn->Recv(chunk, sizeof(chunk));
      if (n == 0) break;
      parser.Feed(chunk, n);
      r = parser.Next(&frame);
    }
    ASSERT_EQ(r, wire::FrameParser::Result::kFrame);
    EXPECT_EQ(frame.opcode, wire::Opcode::kBye);
    EXPECT_NE(frame.flags & wire::kFlagFatal, 0);
  }

  // The server still serves afterwards.
  {
    Status status;
    auto conn = transport.Connect(&status);
    ASSERT_NE(conn, nullptr);
    MVClient client(std::move(conn));
    EXPECT_TRUE(client.Ping().ok());
    std::string text;
    ASSERT_TRUE(client.Stats(&text).ok());
    EXPECT_NE(text.find("server.frames_processed="), std::string::npos);
  }
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ServerTcpTest, RefusedSessionGetsUnavailableGoodbye) {
  Database db{DatabaseOptions{}};
  ServerOptions srv_opts;
  srv_opts.port = 0;
  srv_opts.core.max_sessions = 0;  // refuse everyone
  MVServer server(db, srv_opts);
  Status start = server.Start();
  if (start.IsUnavailable()) GTEST_SKIP() << "MVServer unsupported here";
  ASSERT_TRUE(start.ok());

  TcpTransport transport("127.0.0.1", server.port());
  Status status;
  auto conn = transport.Connect(&status);
  ASSERT_NE(conn, nullptr);  // TCP accepts, then the server says goodbye
  wire::FrameParser parser;
  wire::Frame frame;
  uint8_t chunk[256];
  wire::FrameParser::Result r = wire::FrameParser::Result::kNeedMore;
  while (r == wire::FrameParser::Result::kNeedMore) {
    size_t n = conn->Recv(chunk, sizeof(chunk));
    if (n == 0) break;
    parser.Feed(chunk, n);
    r = parser.Next(&frame);
  }
  ASSERT_EQ(r, wire::FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, wire::Opcode::kBye);
  ASSERT_GE(frame.body.size(), 2u);
  EXPECT_TRUE(wire::WireToStatus(frame.body[0], frame.body[1])
                  .IsUnavailable());
  EXPECT_EQ(server.core().sessions_refused.load(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace mvstore
