// Range scans under GC churn: writers churn versions through ordered-index
// nodes while an insert/delete cycler drains and recreates nodes, and
// concurrent readers iterate the skip list lock-free. If a node or version
// slot were recycled before its epoch is safe, a reader would observe a
// torn payload (checksums), an out-of-order key, or a row outside its
// requested range. Companion to tests/slab_recycle_test.cc, which covers
// the same invariant for hash-bucket reads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "cc/mv_engine.h"
#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct CheckedRow {
  uint64_t key;    // primary
  uint64_t group;  // ordered secondary
  int64_t value;
  uint64_t checksum;
  static uint64_t Checksum(uint64_t k, uint64_t g, int64_t v) {
    return k * 31 + g * 7 + static_cast<uint64_t>(v);
  }
};
uint64_t CheckedKey(const void* p) {
  return static_cast<const CheckedRow*>(p)->key;
}
uint64_t CheckedGroup(const void* p) {
  return static_cast<const CheckedRow*>(p)->group;
}

class OrderedScanChurnTest : public ::testing::TestWithParam<bool> {};

TEST_P(OrderedScanChurnTest, IteratorsSurviveNodeRetirementChurn) {
  const bool use_slab = GetParam();
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  opts.log_mode = LogMode::kDisabled;
  opts.gc_interval_us = 100;  // aggressive reclamation
  opts.use_slab_allocator = use_slab;
  Database db(opts);

  // Stable band: keys/groups 0..kStable-1, updated in balanced pairs so a
  // snapshot scan's value total is invariant. Churn band: keys/groups
  // kChurnBase.., inserted and deleted in cycles so their skip-list nodes
  // drain and retire while scans are in flight.
  constexpr uint64_t kStable = 48;
  constexpr uint64_t kChurn = 32;
  constexpr uint64_t kChurnBase = 1000;
  constexpr int64_t kInitial = 100;

  TableDef def;
  def.name = "churn";
  def.payload_size = sizeof(CheckedRow);
  def.indexes.push_back(IndexDef{&CheckedKey, 256, /*unique=*/true});
  IndexDef ordered{&CheckedGroup, 256, /*unique=*/false};
  ordered.ordered = true;
  def.indexes.push_back(ordered);
  TableId table = db.CreateTable(def);

  auto insert_row = [&](uint64_t key, uint64_t group, int64_t value) {
    return db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
      CheckedRow row{key, group, value,
                     CheckedRow::Checksum(key, group, value)};
      return db.Insert(t, table, &row);
    });
  };
  for (uint64_t k = 0; k < kStable; ++k) {
    ASSERT_TRUE(insert_row(k, k, kInitial).ok());
  }

  std::atomic<bool> stop{false};
  // Split by invariant so a failure names the broken one: torn payload,
  // key ordering, range bounds, or snapshot consistency.
  std::atomic<uint64_t> checksum_bad{0};
  std::atomic<uint64_t> order_bad{0};
  std::atomic<uint64_t> range_bad{0};
  std::atomic<uint64_t> snapshot_bad{0};
  // First inconsistent snapshot, for the failure message: which stable
  // groups were seen (bitmask) and the totals observed. `bad_hash_found`
  // records whether a missing row was reachable through the hash index in
  // the same transaction (discriminates a skipped ordered chain from a
  // visibility/GC loss).
  std::atomic<uint64_t> bad_mask{0};
  std::atomic<int64_t> bad_total{0};
  std::atomic<uint64_t> bad_rows{0};
  std::atomic<int> bad_hash_found{-1};
  // Same-transaction cross-checks of the first bad scan: a second ordered
  // scan and a hash-index point-read sum, both at the same read time.
  std::atomic<int64_t> bad_rescan_total{-1};
  std::atomic<int64_t> bad_hash_total{-1};
  std::mutex bad_rows_mu;
  std::vector<int64_t> bad_first(kStable, INT64_MIN);
  std::vector<int64_t> bad_second(kStable, INT64_MIN);
  std::atomic<uint64_t> scans_done{0};
  std::atomic<uint64_t> node_cycles{0};

  std::vector<std::thread> workers;

  // Value churn: balanced transfers inside the stable band.
  workers.emplace_back([&] {
    Random rng(0xABCD);
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t a = rng.Uniform(kStable);
      uint64_t b = (a + 1) % kStable;
      db.RunTransaction(
          IsolationLevel::kReadCommitted,
          [&](Txn* t) {
            Status s = db.Update(t, table, 0, a, [](void* p) {
              auto* row = static_cast<CheckedRow*>(p);
              row->value -= 5;
              row->checksum =
                  CheckedRow::Checksum(row->key, row->group, row->value);
            });
            if (!s.ok()) return s;
            return db.Update(t, table, 0, b, [](void* p) {
              auto* row = static_cast<CheckedRow*>(p);
              row->value += 5;
              row->checksum =
                  CheckedRow::Checksum(row->key, row->group, row->value);
            });
          },
          /*max_retries=*/20);
    }
  });

  // Node churn: cycle the churn band in and out so ordered-index nodes
  // drain (GC unlinks the last version) and get epoch-retired mid-scan.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t i = 0; i < kChurn; ++i) {
        insert_row(kChurnBase + i, kChurnBase + i, 1);
      }
      for (uint64_t i = 0; i < kChurn; ++i) {
        db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
          return db.Delete(t, table, 0, kChurnBase + i);
        });
      }
      node_cycles.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Readers: full-range ordered scans validating checksum, ordering and
  // bounds; plus a snapshot-consistency check over the stable band.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&, r] {
      Random rng(0xF00D + r);
      std::vector<int64_t> vals(kStable);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t last_group = 0;
        int64_t stable_total = 0;
        uint64_t stable_rows = 0;
        uint64_t stable_mask = 0;
        bool ok_scan = true;
        Status s = db.RunTransaction(IsolationLevel::kSnapshot, [&](Txn* t) {
          last_group = 0;
          stable_total = 0;
          stable_rows = 0;
          stable_mask = 0;
          ok_scan = true;
          Status scan_status = db.ScanRange(
              t, table, 1, 0, kChurnBase + kChurn, nullptr,
              [&](const void* p) {
                const auto* row = static_cast<const CheckedRow*>(p);
                if (row->checksum !=
                    CheckedRow::Checksum(row->key, row->group, row->value)) {
                  checksum_bad.fetch_add(1, std::memory_order_relaxed);
                  ok_scan = false;
                  return false;
                }
                if (row->group < last_group) {
                  order_bad.fetch_add(1, std::memory_order_relaxed);
                  ok_scan = false;
                  return false;
                }
                if (row->group > kChurnBase + kChurn) {
                  range_bad.fetch_add(1, std::memory_order_relaxed);
                  ok_scan = false;
                  return false;
                }
                last_group = row->group;
                if (row->group < kStable) {
                  stable_total += row->value;
                  ++stable_rows;
                  stable_mask |= uint64_t{1} << row->group;
                  vals[row->group] = row->value;
                }
                return true;
              });
          // A stable row missing from the ordered scan: probe it through
          // the primary hash index at the same read time before committing.
          if (scan_status.ok() && ok_scan && stable_rows != kStable) {
            uint64_t missing = 0;
            while (missing < kStable &&
                   (stable_mask >> missing & 1) != 0) {
              ++missing;
            }
            CheckedRow out;
            Status rs = db.Read(t, table, 0, missing, &out);
            bad_hash_found.store(rs.ok() ? 1 : 0, std::memory_order_relaxed);
          }
          // Inconsistent total with every row present: rescan and re-sum
          // through the hash index inside the same transaction. Whether
          // these agree with the first pass tells racing-scan apart from
          // wrong-visibility-at-fixed-read-time.
          if (scan_status.ok() && ok_scan && stable_rows == kStable &&
              stable_total != static_cast<int64_t>(kStable) * kInitial) {
            int64_t again = 0;
            std::vector<int64_t> vals2(kStable, INT64_MIN);
            db.ScanRange(t, table, 1, 0, kStable - 1, nullptr,
                         [&](const void* p) {
                           const auto* row = static_cast<const CheckedRow*>(p);
                           again += row->value;
                           if (row->group < kStable) {
                             vals2[row->group] = row->value;
                           }
                           return true;
                         });
            bad_rescan_total.store(again, std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lk(bad_rows_mu);
              bad_first = vals;
              bad_second = vals2;
            }
            int64_t hsum = 0;
            for (uint64_t k = 0; k < kStable; ++k) {
              CheckedRow out;
              if (db.Read(t, table, 0, k, &out).ok()) hsum += out.value;
            }
            bad_hash_total.store(hsum, std::memory_order_relaxed);
          }
          return scan_status;
        });
        if (s.ok()) {
          if (ok_scan &&
              (stable_rows != kStable ||
               stable_total != static_cast<int64_t>(kStable) * kInitial)) {
            if (snapshot_bad.fetch_add(1, std::memory_order_relaxed) == 0) {
              bad_mask.store(stable_mask, std::memory_order_relaxed);
              bad_total.store(stable_total, std::memory_order_relaxed);
              bad_rows.store(stable_rows, std::memory_order_relaxed);
            }
          }
          scans_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_EQ(checksum_bad.load(), 0u);
  EXPECT_EQ(order_bad.load(), 0u);
  EXPECT_EQ(range_bad.load(), 0u);
  EXPECT_EQ(snapshot_bad.load(), 0u)
      << "first bad scan: rows=" << bad_rows.load()
      << " total=" << bad_total.load() << " hash_found="
      << bad_hash_found.load() << " rescan_total=" << bad_rescan_total.load()
      << " hash_total=" << bad_hash_total.load() << " mask=" << std::hex
      << bad_mask.load() << " (expected mask " << ((uint64_t{1} << 48) - 1)
      << ")" << std::dec << [&] {
           std::string diffs;
           std::lock_guard<std::mutex> lk(bad_rows_mu);
           for (uint64_t k = 0; k < kStable; ++k) {
             if (bad_first[k] != bad_second[k]) {
               diffs += " row" + std::to_string(k) + ":" +
                        std::to_string(bad_first[k]) + "->" +
                        std::to_string(bad_second[k]);
             }
           }
           return diffs.empty() ? std::string(" (no per-row diffs)") : diffs;
         }();
  EXPECT_GT(scans_done.load(), 0u);
  EXPECT_GT(node_cycles.load(), 0u);
  EXPECT_GT(db.stats().Get(Stat::kVersionsCollected), 0u);

  // Drain everything; the churn band must be gone from the index and the
  // stable band fully intact and ordered.
  db.mv_engine()->gc().RunOnce();
  db.mv_engine()->epoch().TryAdvanceAndReclaim();
  std::vector<uint64_t> groups;
  ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  groups.clear();
                  return db.ScanRange(t, table, 1, 0, kChurnBase + kChurn,
                                      nullptr, [&](const void* p) {
                                        groups.push_back(CheckedGroup(p));
                                        return true;
                                      });
                }).ok());
  ASSERT_EQ(groups.size(), kStable);
  for (uint64_t k = 0; k < kStable; ++k) EXPECT_EQ(groups[k], k);

  // The drained churn nodes must actually have left the skip list.
  OrderedIndex* index = db.mv_engine()->table(table).ordered_index(1);
  ASSERT_NE(index, nullptr);
  EXPECT_LE(index->CountNodes(), kStable + kChurn);
}

INSTANTIATE_TEST_SUITE_P(SlabAndHeap, OrderedScanChurnTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "slab" : "heap";
                         });

}  // namespace
}  // namespace mvstore
