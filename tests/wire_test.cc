// Wire-protocol hardening: the malformed-frame suite (mirroring the
// ParseLogRecord torn/corrupt-tail discipline), split-across-read framing,
// pipelining, and the same attacks delivered through a live loopback
// session — where a garbage frame must kill exactly that connection,
// answered with a fatal goodbye, never desync or crash the server.
#include <gtest/gtest.h>

#include <cstring>

#include "client/client.h"
#include "core/database.h"
#include "server/loopback.h"
#include "server/server_core.h"
#include "server/session.h"
#include "server/wire.h"

namespace mvstore {
namespace {

using wire::AppendFrame;
using wire::Frame;
using wire::FrameParser;
using wire::Opcode;

std::vector<uint8_t> PingFrame() {
  std::vector<uint8_t> out;
  AppendFrame(&out, Opcode::kPing, 0, nullptr, 0);
  return out;
}

std::vector<uint8_t> GetFrame() {
  std::vector<uint8_t> body(16, 0);
  std::vector<uint8_t> out;
  AppendFrame(&out, Opcode::kGet, 0, body.data(), body.size());
  return out;
}

TEST(WireTest, RoundTrip) {
  uint8_t body[5] = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes;
  AppendFrame(&bytes, Opcode::kCall, 0, body, sizeof(body));
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kCall);
  EXPECT_EQ(frame.flags, 0);
  EXPECT_EQ(frame.body, std::vector<uint8_t>(body, body + sizeof(body)));
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

TEST(WireTest, EmptyBodyFrame) {
  std::vector<uint8_t> bytes = PingFrame();
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_TRUE(frame.body.empty());
}

TEST(WireTest, SplitAcrossReadsByteByByte) {
  std::vector<uint8_t> bytes = GetFrame();
  FrameParser parser;
  Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.Feed(&bytes[i], 1);
    ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore)
        << "byte " << i;
  }
  parser.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kGet);
}

TEST(WireTest, TruncatedHeaderNeedsMore) {
  std::vector<uint8_t> bytes = GetFrame();
  FrameParser parser;
  parser.Feed(bytes.data(), wire::kHeaderSize - 1);
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

TEST(WireTest, TruncatedBodyNeedsMore) {
  std::vector<uint8_t> bytes = GetFrame();
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size() - 3);
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

TEST(WireTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = PingFrame();
  bytes[0] = 'X';
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, BadOpcodeRejected) {
  std::vector<uint8_t> bytes = PingFrame();
  bytes[3] = wire::kMaxOpcode + 1;
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, UnknownFlagBitsRejected) {
  std::vector<uint8_t> bytes = PingFrame();
  bytes[2] = 0x80;
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, OversizedLengthRejectedBeforeBodyArrives) {
  // A garbage length must be rejected from the header alone — no waiting
  // for gigabytes that will never come, no allocation.
  std::vector<uint8_t> bytes = PingFrame();
  uint32_t huge = wire::kMaxFrameBody + 1;
  std::memcpy(bytes.data() + 4, &huge, 4);
  FrameParser parser;
  parser.Feed(bytes.data(), wire::kHeaderSize);  // header only
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, ChecksumMismatchRejected) {
  std::vector<uint8_t> bytes = GetFrame();
  bytes[wire::kHeaderSize + 2] ^= 0xFF;  // flip a body byte
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, CorruptedLengthCaughtByChecksum) {
  // Shrink the length without touching anything else: the checksum (over
  // the now-short body) cannot match.
  std::vector<uint8_t> bytes = GetFrame();
  uint32_t short_len = 4;
  std::memcpy(bytes.data() + 4, &short_len, 4);
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, BadIsTerminal) {
  std::vector<uint8_t> bytes = PingFrame();
  bytes[0] = 'X';
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
  // Even a pristine frame afterwards cannot resurrect the stream: framing
  // was lost, and resynchronizing on magic bytes would trust attacker-
  // controlled data.
  std::vector<uint8_t> good = PingFrame();
  parser.Feed(good.data(), good.size());
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kBad);
}

TEST(WireTest, PipelinedFramesParseInOrder) {
  std::vector<uint8_t> bytes;
  for (uint8_t i = 0; i < 10; ++i) {
    std::vector<uint8_t> body{i};
    AppendFrame(&bytes, Opcode::kCall, 0, body.data(), body.size());
  }
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Frame frame;
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
    ASSERT_EQ(frame.body.size(), 1u);
    EXPECT_EQ(frame.body[0], i);
  }
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

TEST(WireTest, StatusRoundTrip) {
  EXPECT_EQ(wire::WireToStatus(
                static_cast<uint8_t>(Status::Code::kUnavailable), 0),
            Status::Unavailable());
  EXPECT_EQ(wire::WireToStatus(static_cast<uint8_t>(Status::Code::kAborted),
                               static_cast<uint8_t>(AbortReason::kPhantom)),
            Status::Aborted(AbortReason::kPhantom));
  // Garbage status bytes from a peer decode to Internal, not UB.
  EXPECT_EQ(wire::WireToStatus(250, 0), Status::Internal());
  EXPECT_EQ(wire::WireToStatus(0, 250), Status::Internal());
}

/// --- the same attacks through a live loopback session ----------------------

class LoopbackMalformedTest : public ::testing::Test {
 protected:
  LoopbackMalformedTest()
      : db_(DatabaseOptions{}), core_(db_), transport_(core_) {}

  /// Send raw bytes, read back one frame (the session answers
  /// synchronously over loopback).
  FrameParser::Result SendAndParse(Connection& conn,
                                   const std::vector<uint8_t>& bytes,
                                   Frame* frame) {
    EXPECT_TRUE(conn.Send(bytes.data(), bytes.size()));
    FrameParser parser;
    uint8_t chunk[4096];
    while (true) {
      FrameParser::Result r = parser.Next(frame);
      if (r != FrameParser::Result::kNeedMore) return r;
      size_t n = conn.Recv(chunk, sizeof(chunk));
      if (n == 0) return FrameParser::Result::kNeedMore;  // EOF, no frame
      parser.Feed(chunk, n);
    }
  }

  Database db_;
  ServerCore core_;
  LoopbackTransport transport_;
};

TEST_F(LoopbackMalformedTest, GarbageKillsOnlyThatConnection) {
  auto conn = transport_.Connect();
  ASSERT_NE(conn, nullptr);
  std::vector<uint8_t> garbage(64, 0xEE);
  Frame frame;
  ASSERT_EQ(SendAndParse(*conn, garbage, &frame),
            FrameParser::Result::kFrame);
  // The goodbye: fatal kBye naming the reason.
  EXPECT_EQ(frame.opcode, Opcode::kBye);
  EXPECT_NE(frame.flags & wire::kFlagFatal, 0);
  ASSERT_GE(frame.body.size(), 2u);
  EXPECT_EQ(wire::WireToStatus(frame.body[0], frame.body[1]),
            Status::InvalidArgument());
  // The connection is dead...
  std::vector<uint8_t> ping = PingFrame();
  EXPECT_FALSE(conn->Send(ping.data(), ping.size()));
  EXPECT_EQ(core_.active_sessions(), 0u);
  EXPECT_EQ(core_.frames_rejected.load(), 1u);
  // ...but the server is fine: a new connection works.
  auto conn2 = transport_.Connect();
  ASSERT_NE(conn2, nullptr);
  ASSERT_EQ(SendAndParse(*conn2, PingFrame(), &frame),
            FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
}

TEST_F(LoopbackMalformedTest, ChecksumMismatchKillsConnection) {
  auto conn = transport_.Connect();
  ASSERT_NE(conn, nullptr);
  std::vector<uint8_t> bytes = GetFrame();
  bytes[wire::kHeaderSize + 1] ^= 0x01;
  Frame frame;
  ASSERT_EQ(SendAndParse(*conn, bytes, &frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kBye);
  EXPECT_NE(frame.flags & wire::kFlagFatal, 0);
}

TEST_F(LoopbackMalformedTest, OversizedLengthKillsConnection) {
  auto conn = transport_.Connect();
  ASSERT_NE(conn, nullptr);
  std::vector<uint8_t> bytes = PingFrame();
  uint32_t huge = 0x7FFFFFFF;
  std::memcpy(bytes.data() + 4, &huge, 4);
  Frame frame;
  ASSERT_EQ(SendAndParse(*conn, bytes, &frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kBye);
}

TEST_F(LoopbackMalformedTest, SplitFrameAcrossSendsIsFine) {
  auto conn = transport_.Connect();
  ASSERT_NE(conn, nullptr);
  std::vector<uint8_t> bytes = PingFrame();
  // First half produces no response; second half completes the frame.
  size_t half = bytes.size() / 2;
  ASSERT_TRUE(conn->Send(bytes.data(), half));
  uint8_t chunk[256];
  EXPECT_EQ(conn->Recv(chunk, sizeof(chunk)), 0u);  // nothing yet
  ASSERT_TRUE(conn->Send(bytes.data() + half, bytes.size() - half));
  Frame frame;
  FrameParser parser;
  size_t n = conn->Recv(chunk, sizeof(chunk));
  ASSERT_GT(n, 0u);
  parser.Feed(chunk, n);
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
}

TEST_F(LoopbackMalformedTest, TruncatedFinalFrameNeverDispatches) {
  // A pipelined burst whose last frame is cut mid-body: the complete
  // frames answer, the torn tail stays buffered (committed-prefix
  // semantics, exactly like log replay's torn-tail rule).
  auto conn = transport_.Connect();
  ASSERT_NE(conn, nullptr);
  std::vector<uint8_t> bytes = PingFrame();
  std::vector<uint8_t> torn = GetFrame();
  bytes.insert(bytes.end(), torn.begin(), torn.end() - 5);
  ASSERT_TRUE(conn->Send(bytes.data(), bytes.size()));
  uint8_t chunk[4096];
  size_t n = conn->Recv(chunk, sizeof(chunk));
  ASSERT_GT(n, 0u);
  FrameParser parser;
  parser.Feed(chunk, n);
  Frame frame;
  ASSERT_EQ(parser.Next(&frame), FrameParser::Result::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  EXPECT_EQ(parser.Next(&frame), FrameParser::Result::kNeedMore);
}

}  // namespace
}  // namespace mvstore
