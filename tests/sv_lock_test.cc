// Unit tests for the 1V engine's partitioned lock table and the engine's
// locking behavior (paper Section 5: no central lock manager, key locks,
// timeout-based deadlock breaking).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sv/lock_table.h"
#include "sv/sv_engine.h"

namespace mvstore {
namespace {

TEST(SVLockTableTest, SharedLocksCoexist) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  EXPECT_TRUE(SVLockTable::AcquireShared(lock, 1, 1000));
  EXPECT_TRUE(SVLockTable::AcquireShared(lock, 2, 1000));
  EXPECT_EQ(lock->readers.load(), 2u);
  SVLockTable::ReleaseShared(lock);
  SVLockTable::ReleaseShared(lock);
  EXPECT_EQ(lock->readers.load(), 0u);
}

TEST(SVLockTableTest, ExclusiveExcludesShared) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  ASSERT_TRUE(SVLockTable::AcquireExclusive(lock, 1, false, 1000));
  // Another transaction's S acquisition times out.
  EXPECT_FALSE(SVLockTable::AcquireShared(lock, 2, 500));
  // Same transaction's S succeeds (X implies S).
  EXPECT_TRUE(SVLockTable::AcquireShared(lock, 1, 500));
  SVLockTable::ReleaseExclusive(lock);
}

TEST(SVLockTableTest, ExclusiveWaitsForReaders) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  ASSERT_TRUE(SVLockTable::AcquireShared(lock, 1, 1000));
  std::atomic<bool> acquired{false};
  std::thread writer([&] {
    EXPECT_TRUE(SVLockTable::AcquireExclusive(lock, 2, false, 200000));
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());
  SVLockTable::ReleaseShared(lock);
  writer.join();
  EXPECT_TRUE(acquired.load());
  SVLockTable::ReleaseExclusive(lock);
}

TEST(SVLockTableTest, ExclusiveTimesOutAndRollsBack) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  ASSERT_TRUE(SVLockTable::AcquireShared(lock, 1, 1000));
  EXPECT_FALSE(SVLockTable::AcquireExclusive(lock, 2, false, 1000));
  // Timed-out writer must not leave the writer word set.
  EXPECT_EQ(lock->writer.load(), 0u);
  SVLockTable::ReleaseShared(lock);
}

TEST(SVLockTableTest, UpgradeConsumesSharedSlot) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  ASSERT_TRUE(SVLockTable::AcquireShared(lock, 1, 1000));
  ASSERT_TRUE(SVLockTable::AcquireExclusive(lock, 1, /*held_shared=*/true,
                                            10000));
  EXPECT_EQ(lock->readers.load(), 0u);
  EXPECT_EQ(lock->writer.load(), 1u);
  SVLockTable::ReleaseExclusive(lock);
}

TEST(SVLockTableTest, TwoUpgradersBothTimeOutOrOneWins) {
  SVLockTable table(64);
  KeyLock* lock = table.LockFor(1);
  ASSERT_TRUE(SVLockTable::AcquireShared(lock, 1, 1000));
  ASSERT_TRUE(SVLockTable::AcquireShared(lock, 2, 1000));
  std::atomic<int> wins{0};
  std::thread u1([&] {
    if (SVLockTable::AcquireExclusive(lock, 1, true, 5000)) wins.fetch_add(1);
  });
  std::thread u2([&] {
    if (SVLockTable::AcquireExclusive(lock, 2, true, 5000)) wins.fetch_add(1);
  });
  u1.join();
  u2.join();
  EXPECT_LE(wins.load(), 1);  // upgrade deadlock broken by timeout
}

TEST(SVLockTableTest, DistinctKeysUsuallyDistinctLocks) {
  SVLockTable table(1024);
  int collisions = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    if (table.LockFor(k) == table.LockFor(k + 1000)) ++collisions;
  }
  EXPECT_LT(collisions, 10);
}

/// --- engine-level locking semantics ------------------------------------------

struct Row {
  uint64_t key;
  uint64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class SVEngineTest : public ::testing::Test {
 protected:
  SVEngineTest() {
    SVEngineOptions opts;
    opts.log_mode = LogMode::kDisabled;
    opts.lock_timeout_us = 3000;
    engine_ = std::make_unique<SVEngine>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = engine_->CreateTable(def);
  }

  void Put(uint64_t key, uint64_t value) {
    SVTransaction* t = engine_->Begin(IsolationLevel::kReadCommitted);
    Row row{key, value};
    ASSERT_TRUE(engine_->Insert(t, table_, &row).ok());
    ASSERT_TRUE(engine_->Commit(t).ok());
  }

  std::unique_ptr<SVEngine> engine_;
  TableId table_ = 0;
};

TEST_F(SVEngineTest, WriterBlocksWriter) {
  Put(1, 10);
  SVTransaction* t1 = engine_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(t1, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  SVTransaction* t2 = engine_->Begin(IsolationLevel::kReadCommitted);
  Status s = engine_->Update(t2, table_, 0, 1, [](void* p) {
    static_cast<Row*>(p)->value = 12;
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kLockTimeout);
  ASSERT_TRUE(engine_->Commit(t1).ok());
}

TEST_F(SVEngineTest, RepeatableReadHoldsLocksToCommit) {
  Put(1, 10);
  SVTransaction* reader = engine_->Begin(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());

  // A concurrent updater times out against the held S lock.
  SVTransaction* writer = engine_->Begin(IsolationLevel::kReadCommitted);
  Status s = engine_->Update(writer, table_, 0, 1, [](void* p) {
    static_cast<Row*>(p)->value = 11;
  });
  EXPECT_TRUE(s.IsAborted());
  ASSERT_TRUE(engine_->Commit(reader).ok());
}

TEST_F(SVEngineTest, ReadCommittedReleasesImmediately) {
  Put(1, 10);
  SVTransaction* reader = engine_->Begin(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());

  // Short lock already released: a writer proceeds while the reader is open.
  SVTransaction* writer = engine_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  ASSERT_TRUE(engine_->Commit(writer).ok());
  ASSERT_TRUE(engine_->Commit(reader).ok());
}

TEST_F(SVEngineTest, UpgradeWithinTransaction) {
  Put(1, 10);
  SVTransaction* t = engine_->Begin(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());  // S
  ASSERT_TRUE(engine_->Update(t, table_, 0, 1, [&](void* p) {  // upgrade to X
                   static_cast<Row*>(p)->value = row.value + 1;
                 }).ok());
  ASSERT_TRUE(engine_->Commit(t).ok());

  SVTransaction* check = engine_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Read(check, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 11u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(SVEngineTest, AbortRestoresBeforeImage) {
  Put(1, 10);
  SVTransaction* t = engine_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(t, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 999;
                 }).ok());
  engine_->Abort(t);

  SVTransaction* check = engine_->Begin(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(engine_->Read(check, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(SVEngineTest, AbortRelinksDeletedRow) {
  Put(1, 10);
  SVTransaction* t = engine_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Delete(t, table_, 0, 1).ok());
  engine_->Abort(t);

  SVTransaction* check = engine_->Begin(IsolationLevel::kReadCommitted);
  Row row{};
  EXPECT_TRUE(engine_->Read(check, table_, 0, 1, &row).ok());
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(SVEngineTest, AbortUnlinksInsertedRow) {
  SVTransaction* t = engine_->Begin(IsolationLevel::kReadCommitted);
  Row row{5, 50};
  ASSERT_TRUE(engine_->Insert(t, table_, &row).ok());
  engine_->Abort(t);

  SVTransaction* check = engine_->Begin(IsolationLevel::kReadCommitted);
  EXPECT_TRUE(engine_->Read(check, table_, 0, 5, &row).IsNotFound());
  ASSERT_TRUE(engine_->Commit(check).ok());
}

TEST_F(SVEngineTest, KeyLockCoversPhantoms) {
  // A serializable scan of key K S-locks K's hash-key lock, so inserts of K
  // block until the scanner commits (the paper's free phantom protection).
  SVTransaction* scanner = engine_->Begin(IsolationLevel::kSerializable);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(scanner, table_, 0, 77, nullptr,
                            [&](const void*) {
                              ++seen;
                              return true;
                            })
                  .ok());
  EXPECT_EQ(seen, 0);

  SVTransaction* inserter = engine_->Begin(IsolationLevel::kReadCommitted);
  Row row{77, 1};
  Status s = engine_->Insert(inserter, table_, &row);
  EXPECT_TRUE(s.IsAborted());  // blocked on the key lock until timeout
  ASSERT_TRUE(engine_->Commit(scanner).ok());
}

TEST_F(SVEngineTest, DeadlockBrokenByTimeout) {
  Put(1, 10);
  Put(2, 20);
  Status s1, s2;
  auto crossing = [&](uint64_t first, uint64_t second, Status* out) {
    SVTransaction* t = engine_->Begin(IsolationLevel::kRepeatableRead);
    Row row{};
    Status s = engine_->Read(t, table_, 0, first, &row);
    if (s.IsAborted()) {
      *out = s;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    s = engine_->Update(t, table_, 0, second, [](void* p) {
      static_cast<Row*>(p)->value += 1;
    });
    if (s.IsAborted()) {
      *out = s;
      return;
    }
    *out = engine_->Commit(t);
  };
  std::thread t1([&] { crossing(1, 2, &s1); });
  std::thread t2([&] { crossing(2, 1, &s2); });
  t1.join();
  t2.join();
  // The timeout must break the deadlock: at least one side finishes, and
  // any failure is a lock timeout.
  EXPECT_TRUE(s1.ok() || s2.ok() || s1.IsAborted() || s2.IsAborted());
  if (!s1.ok()) {
    EXPECT_EQ(s1.abort_reason(), AbortReason::kLockTimeout);
  }
  if (!s2.ok()) {
    EXPECT_EQ(s2.abort_reason(), AbortReason::kLockTimeout);
  }
}

}  // namespace
}  // namespace mvstore
