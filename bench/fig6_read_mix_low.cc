// Figure 6: impact of short read-only transactions, LOW contention.
// Expected shape: the gap between schemes narrows as the read ratio grows
// (less update activity, less GC); MV schemes overtake 1V when most
// transactions are read-only (1V still pays short read locks).
#include "bench/read_mix_bench.h"

int main(int argc, char** argv) {
  return mvstore::bench::RunReadMixBench(argc, argv, /*default_rows=*/200000,
                                         "Figure 6 (low contention)");
}
