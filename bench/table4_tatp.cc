// Table 4: TATP throughput per scheme (paper: 20M subscribers, 24 threads,
// Read Committed; several million transactions/sec, 1V ahead of both MV
// schemes by ~1.35x).
#include "bench/harness.h"
#include "common/random.h"
#include "workload/tatp.h"

using namespace mvstore;
using namespace mvstore::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t subscribers =
      flags.GetUint("subscribers", flags.Has("full") ? 20000000 : 100000);
  const double seconds = flags.GetDouble("seconds", 1.0);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));

  std::printf("# Table 4: TATP, %llu subscribers, MPL=%u, Read Committed\n",
              static_cast<unsigned long long>(subscribers), threads);
  std::printf("%-6s %20s %14s\n", "", "transactions/sec", "abort rate");

  JsonReporter json(flags, "table4_tatp");
  for (Scheme scheme : SchemesToRun(flags)) {
    DatabaseOptions opts = MakeOptions(scheme, flags);
    Database db(opts);
    tatp::TatpDatabase tatp = tatp::LoadTatp(db, subscribers);
    RunResult r = RunFixedDuration(
        threads, seconds,
        [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
          Random rng(0xACE + tid);
          while (!stop.load(std::memory_order_relaxed)) {
            Status s = tatp::RunTatpTxn(db, tatp, rng, tatp::PickTxnType(rng));
            if (s.ok()) {
              ++c.committed;
            } else {
              ++c.aborted;
            }
          }
        });
    std::printf("%-6s %20.0f %13.2f%%\n", SchemeName(scheme), r.tps(),
                100.0 * r.abort_rate());
    json.AddRow(SchemeLabel(scheme, opts), threads, r.tps(), r.aborted);
    std::fflush(stdout);
  }
  return 0;
}
