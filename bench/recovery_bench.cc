// Recovery-time benchmark: log size x replay threads -> replay seconds.
//
// Builds a synthetic redo log (inserts, updates, deletes with valid
// history), then measures checkpoint-less recovery into a fresh database
// for each scheme across a replay-thread sweep — the paper's "multiple log
// streams" observation as wall-clock numbers. Rows report tps = log records
// replayed per second.
//
//   --txns N      log records to generate (default 20000)
//   --rows R      distinct keys (default 5000)
//   --threads T   max replay threads (sweep 1,2,4,..,T; default hw cap)
//   --scheme X    restrict to one scheme (1V, MV/L, MV/O)
//   --json PATH   machine-readable rows (scheme carries "+tN" thread tag)
#include <cstring>
#include <random>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "bench/harness.h"
#include "common/timing.h"
#include "core/recovery.h"
#include "log/log_record.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t v0;
  uint64_t v1;
  uint64_t v2;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

/// Synthesize `txns` commit records with a consistent history over up to
/// `rows` keys. Returns the serialized log bytes.
std::vector<uint8_t> BuildLog(uint64_t txns, uint64_t rows,
                              uint64_t* live_rows) {
  std::vector<uint8_t> log;
  std::mt19937_64 rng(1234);
  std::vector<uint64_t> live;
  live.reserve(rows);
  uint64_t next_key = 0;
  Timestamp ts = 0;
  for (uint64_t i = 0; i < txns; ++i) {
    ++ts;
    LogRecordBuilder builder(log);
    builder.BeginRecord(ts, /*txn_id=*/ts);
    const uint64_t dice = rng() % 100;
    if (live.empty() || (dice < 20 && next_key < rows)) {
      Row row{next_key, rng(), rng(), rng()};
      builder.AddInsert(0, &row, sizeof(row));
      live.push_back(next_key);
      ++next_key;
    } else if (dice < 90 || live.size() <= 1) {
      const uint64_t key = live[rng() % live.size()];
      Row before{key, 0, 0, 0};
      Row after = before;
      after.v1 = rng();  // single contiguous diff range
      builder.AddUpdate(0, key, &before, &after, sizeof(Row));
    } else {
      const size_t at = rng() % live.size();
      builder.AddDelete(0, live[at]);
      live[at] = live.back();
      live.pop_back();
    }
    builder.EndRecord();
  }
  *live_rows = live.size();
  return log;
}

}  // namespace
}  // namespace mvstore

int main(int argc, char** argv) {
  using namespace mvstore;
  using namespace mvstore::bench;

  Flags flags(argc, argv);
  const uint64_t txns = flags.GetUint("txns", 20000);
  const uint64_t rows = flags.GetUint("rows", 5000);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  JsonReporter json(flags, BenchSlug(argv[0]));

  uint64_t live_rows = 0;
  std::vector<uint8_t> log_bytes = BuildLog(txns, rows, &live_rows);
  char path[256];
  std::snprintf(path, sizeof(path), "/tmp/mvstore_recovery_bench_%d.log",
                ::getpid());
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr ||
      std::fwrite(log_bytes.data(), 1, log_bytes.size(), f) !=
          log_bytes.size()) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fclose(f);
  std::printf("log: %llu records, %.1f MB, %llu live rows\n",
              static_cast<unsigned long long>(txns),
              log_bytes.size() / 1e6,
              static_cast<unsigned long long>(live_rows));
  std::printf("%-6s %8s %12s %14s\n", "scheme", "threads", "seconds",
              "records/s");

  for (Scheme scheme : SchemesToRun(flags)) {
    for (uint32_t threads : ThreadSweep(max_threads)) {
      DatabaseOptions opts;
      opts.scheme = scheme;
      opts.log_mode = LogMode::kDisabled;
      Database db(opts);
      TableDef def;
      def.name = "rows";
      def.payload_size = sizeof(Row);
      def.indexes.push_back(IndexDef{&RowKey, rows, true});
      db.CreateTable(def);

      RecoveryOptions recovery;
      recovery.log_path = path;
      recovery.threads = threads;
      RecoveryReport report;
      Timer timer;
      Status s = RecoverDatabase(db, recovery, &report);
      const double seconds = timer.ElapsedSeconds();
      if (!s.ok() || report.records_replayed != txns) {
        std::fprintf(stderr, "recovery failed (%s, %u threads): %s\n",
                     SchemeName(scheme), threads, s.ToString().c_str());
        std::remove(path);
        return 1;
      }
      const double per_second = txns / seconds;
      std::printf("%-6s %8u %12.3f %14.0f\n", SchemeName(scheme), threads,
                  seconds, per_second);
      json.AddRow(SchemeName(scheme), threads, per_second, 0);
    }
  }
  std::remove(path);
  return 0;
}
