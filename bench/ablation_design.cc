// Ablation E10: cost of individual design choices called out in DESIGN.md.
//
//   * honor_locks on/off        -- what coexistence costs a pure-MV/O run
//   * logging disabled/async/sync -- what group commit buys
//   * GC on/off                 -- what version cleanup costs (and what
//                                  unbounded chains would do instead)
//   * slab allocator on/off     -- what src/mem/ recycling buys the hot path
// Homogeneous R=10/W=2 workload at a fixed multiprogramming level.
#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

using namespace mvstore;
using namespace mvstore::bench;

namespace {

RunResult Measure(const DatabaseOptions& opts, uint64_t rows,
                  uint32_t threads, double seconds) {
  Database db(opts);
  TableId table = workload::CreateAndLoadRows(db, rows);
  RunResult r = RunFixedDuration(
      threads, seconds,
      [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
        Random rng(0xAB1 + tid);
        while (!stop.load(std::memory_order_relaxed)) {
          Status s = workload::RunUpdateTxn(db, table, rng, rows, 10, 2,
                                            IsolationLevel::kReadCommitted);
          if (s.ok()) {
            ++c.committed;
          } else {
            ++c.aborted;
          }
        }
      });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows = flags.GetUint("rows", 100000);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));

  std::printf("# Ablations: MV/O, R=10 W=2, N=%llu, MPL=%u\n",
              static_cast<unsigned long long>(rows), threads);
  std::printf("%-40s %16s\n", "configuration", "tx/sec");
  JsonReporter json(flags, BenchSlug(argv[0]));
  auto report = [&](const char* name, const char* tag,
                    const DatabaseOptions& opts) {
    RunResult r = Measure(opts, rows, threads, seconds);
    std::printf("%-40s %16.0f\n", name, r.tps());
    json.AddRow(tag, threads, r.tps(), r.aborted);
  };

  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    report("baseline (honor_locks, async log, gc)", "baseline", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    opts.honor_locks = false;
    report("pure MV/O (no lock honoring barrier)", "no_honor_locks", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    opts.log_mode = LogMode::kDisabled;
    report("logging disabled", "no_log", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    opts.log_mode = LogMode::kSync;
    report("synchronous logging (durable commit)", "sync_log", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    opts.gc_interval_us = 0;  // cooperative only
    report("no background GC (cooperative only)", "no_bg_gc", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic, flags);
    opts.use_slab_allocator = false;
    report("heap allocator (memory subsystem off)", "heap_alloc", opts);
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionLocking, flags);
    opts.deadlock_interval_us = 100;
    report("MV/L with aggressive deadlock detection", "mvl_fast_deadlock",
           opts);
  }
  return 0;
}
