// Ablation E10: cost of individual design choices called out in DESIGN.md.
//
//   * honor_locks on/off        -- what coexistence costs a pure-MV/O run
//   * logging disabled/async/sync -- what group commit buys
//   * GC on/off                 -- what version cleanup costs (and what
//                                  unbounded chains would do instead)
// Homogeneous R=10/W=2 workload at a fixed multiprogramming level.
#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

using namespace mvstore;
using namespace mvstore::bench;

namespace {

double MeasureTps(const DatabaseOptions& opts, uint64_t rows, uint32_t threads,
                  double seconds) {
  Database db(opts);
  TableId table = workload::CreateAndLoadRows(db, rows);
  RunResult r = RunFixedDuration(
      threads, seconds,
      [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
        Random rng(0xAB1 + tid);
        while (!stop.load(std::memory_order_relaxed)) {
          Status s = workload::RunUpdateTxn(db, table, rng, rows, 10, 2,
                                            IsolationLevel::kReadCommitted);
          if (s.ok()) {
            ++c.committed;
          } else {
            ++c.aborted;
          }
        }
      });
  return r.tps();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows = flags.GetUint("rows", 100000);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));

  std::printf("# Ablations: MV/O, R=10 W=2, N=%llu, MPL=%u\n",
              static_cast<unsigned long long>(rows), threads);
  std::printf("%-40s %16s\n", "configuration", "tx/sec");

  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic);
    std::printf("%-40s %16.0f\n", "baseline (honor_locks, async log, gc)",
                MeasureTps(opts, rows, threads, seconds));
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic);
    opts.honor_locks = false;
    std::printf("%-40s %16.0f\n", "pure MV/O (no lock honoring barrier)",
                MeasureTps(opts, rows, threads, seconds));
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic);
    opts.log_mode = LogMode::kDisabled;
    std::printf("%-40s %16.0f\n", "logging disabled",
                MeasureTps(opts, rows, threads, seconds));
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic);
    opts.log_mode = LogMode::kSync;
    std::printf("%-40s %16.0f\n", "synchronous logging (durable commit)",
                MeasureTps(opts, rows, threads, seconds));
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionOptimistic);
    opts.gc_interval_us = 0;  // cooperative only
    std::printf("%-40s %16.0f\n", "no background GC (cooperative only)",
                MeasureTps(opts, rows, threads, seconds));
  }
  {
    DatabaseOptions opts = MakeOptions(Scheme::kMultiVersionLocking);
    opts.deadlock_interval_us = 100;
    std::printf("%-40s %16.0f\n", "MV/L with aggressive deadlock detection",
                MeasureTps(opts, rows, threads, seconds));
  }
  return 0;
}
