// Figures 8 and 9: impact of long read-only transactions.
//
// Fixed MPL; x of the workers run long serializable read-only transactions
// touching 10% of the table, the remaining MPL-x run short update
// transactions (R=10, W=2). One binary prints both series: update
// throughput (Figure 8) and read throughput in rows/sec terms of completed
// long readers (Figure 9).
//
// Expected shape: at x=1, 1V update throughput collapses (~75% drop in the
// paper -- the long reader's shared locks starve updaters); the MV schemes
// drop only a few percent. By x=MPL/2 the MV update throughput is orders of
// magnitude above 1V.
#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

using namespace mvstore;
using namespace mvstore::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows =
      flags.GetUint("rows", flags.Has("full") ? 10000000 : 100000);
  const double seconds = flags.GetDouble("seconds", 0.6);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint64_t touches = flags.GetUint("touches", rows / 10);
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("# Figures 8+9: long serializable readers (touch %llu rows = "
              "10%% of N=%llu), short updates R=10 W=2, MPL=%u\n",
              static_cast<unsigned long long>(touches),
              static_cast<unsigned long long>(rows), threads);

  std::vector<Scheme> schemes = SchemesToRun(flags);
  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<TableId> tables;
  std::vector<std::string> labels;
  for (Scheme s : schemes) {
    DatabaseOptions opts = MakeOptions(s, flags);
    labels.push_back(SchemeLabel(s, opts));
    dbs.push_back(std::make_unique<Database>(opts));
    tables.push_back(workload::CreateAndLoadRows(*dbs.back(), rows));
  }

  std::printf("%-10s", "readers");
  for (Scheme s : schemes) {
    std::printf("%14s", (std::string(SchemeName(s)) + " upd/s").c_str());
  }
  for (Scheme s : schemes) {
    std::printf("%14s", (std::string(SchemeName(s)) + " rd/s").c_str());
  }
  std::printf("\n");

  std::vector<uint32_t> reader_counts;
  for (uint32_t x : {0u, 1u, 2u, threads / 4, threads / 2,
                     3 * threads / 4, threads}) {
    if (reader_counts.empty() || x > reader_counts.back()) {
      reader_counts.push_back(x);
    }
  }

  for (uint32_t x : reader_counts) {
    std::vector<double> upd(schemes.size()), rd(schemes.size());
    for (size_t i = 0; i < schemes.size(); ++i) {
      Database& db = *dbs[i];
      TableId table = tables[i];
      RunResult r = RunFixedDuration(
          threads, seconds,
          [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
            Random rng(0xD00D + tid);
            uint64_t checksum = 0;
            if (tid < x) {
              // Long serializable read-only transactions.
              while (!stop.load(std::memory_order_relaxed)) {
                Status s = workload::RunLongReadTxn(db, table, rng, rows,
                                                    touches, &checksum);
                if (s.ok()) {
                  ++c.committed_class2;
                } else {
                  ++c.aborted;
                }
              }
            } else {
              while (!stop.load(std::memory_order_relaxed)) {
                Status s = workload::RunUpdateTxn(
                    db, table, rng, rows, 10, 2,
                    IsolationLevel::kReadCommitted);
                if (s.ok()) {
                  ++c.committed;
                } else {
                  ++c.aborted;
                }
              }
            }
          });
      upd[i] = r.tps();
      // Read throughput reported as rows read/sec by long readers.
      rd[i] = r.tps_class2() * static_cast<double>(touches);
      json.AddRow(labels[i] + "@readers" + std::to_string(x) + "/upd",
                  threads, upd[i], r.aborted);
      json.AddRow(labels[i] + "@readers" + std::to_string(x) + "/rd", threads,
                  rd[i], r.aborted);
    }
    std::printf("%-10u", x);
    for (double v : upd) std::printf("%14.0f", v);
    for (double v : rd) std::printf("%14.0f", v);
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
