// Table 3: throughput at higher isolation levels, and percentage drop
// compared to Read Committed. Homogeneous workload (R=10, W=2), fixed
// multiprogramming level (paper: 24).
//
// Expected shape: RR/SR nearly free for 1V (~2%); MV/O pays ~8% for RR
// (read-set validation) and ~19% for SR (scan repetition); MV/L pays ~1%
// for RR and ~10% for SR (record + bucket locks).
#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

using namespace mvstore;
using namespace mvstore::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows =
      flags.GetUint("rows", flags.Has("full") ? 10000000 : 200000);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));

  std::printf("# Table 3: isolation levels, R=10 W=2, N=%llu, MPL=%u\n",
              static_cast<unsigned long long>(rows), threads);
  std::printf("%-6s %16s %16s %8s %16s %8s\n", "", "ReadCommitted",
              "RepeatableRead", "drop", "Serializable", "drop");

  const IsolationLevel levels[] = {IsolationLevel::kReadCommitted,
                                   IsolationLevel::kRepeatableRead,
                                   IsolationLevel::kSerializable};
  const char* level_tags[] = {"RC", "RR", "SR"};
  JsonReporter json(flags, BenchSlug(argv[0]));

  for (Scheme scheme : SchemesToRun(flags)) {
    DatabaseOptions opts = MakeOptions(scheme, flags);
    Database db(opts);
    TableId table = workload::CreateAndLoadRows(db, rows);
    double tps[3] = {0, 0, 0};
    for (int level = 0; level < 3; ++level) {
      IsolationLevel iso = levels[level];
      RunResult r = RunFixedDuration(
          threads, seconds,
          [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
            Random rng(0xBEEF + tid);
            while (!stop.load(std::memory_order_relaxed)) {
              Status s =
                  workload::RunUpdateTxn(db, table, rng, rows, 10, 2, iso);
              if (s.ok()) {
                ++c.committed;
              } else {
                ++c.aborted;
              }
            }
          });
      tps[level] = r.tps();
      json.AddRow(SchemeLabel(scheme, opts) + "@" + level_tags[level],
                  threads, tps[level], r.aborted);
    }
    auto drop = [&](int level) {
      return tps[0] > 0 ? 100.0 * (tps[0] - tps[level]) / tps[0] : 0.0;
    };
    std::printf("%-6s %16.0f %16.0f %7.1f%% %16.0f %7.1f%%\n",
                SchemeName(scheme), tps[0], tps[1], drop(1), tps[2], drop(2));
    std::fflush(stdout);
  }
  return 0;
}
