// Figure 4: transaction throughput vs multiprogramming level under LOW
// contention (10M rows at paper scale; scaled-down default for laptops).
// Expected shape: all three schemes scale; 1V highest, MV/O next, MV/L
// ~30% below MV/O (version management + dependency tracking overhead).
#include "bench/homogeneous_bench.h"

int main(int argc, char** argv) {
  return mvstore::bench::RunScalabilityBench(argc, argv,
                                             /*default_rows=*/200000,
                                             "Figure 4 (low contention)");
}
