// Ablation E9: microbenchmarks of the concurrency-control primitives.
//
// The paper argues (Section 6) that "the only critical section in our method
// is acquiring timestamps ... a single instruction". These google-benchmark
// fixtures measure each building block in isolation: timestamp allocation,
// lock-word CAS, epoch enter/exit, hash-index probes, and the visibility
// check itself.
#include <benchmark/benchmark.h>

#include "cc/visibility.h"
#include "common/random.h"
#include "storage/table.h"
#include "txn/timestamp.h"
#include "util/epoch.h"

namespace mvstore {
namespace {

void BM_TimestampNext(benchmark::State& state) {
  static TimestampGenerator gen;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_TimestampNext)->ThreadRange(1, 16);

void BM_LockWordCas(benchmark::State& state) {
  static std::atomic<uint64_t> word{lockword::MakeTimestamp(kInfinity)};
  for (auto _ : state) {
    uint64_t expected = lockword::MakeTimestamp(kInfinity);
    word.compare_exchange_strong(expected, lockword::MakeLockWord(0, 1));
    word.store(lockword::MakeTimestamp(kInfinity),
               std::memory_order_release);
  }
}
BENCHMARK(BM_LockWordCas)->ThreadRange(1, 8);

void BM_EpochGuard(benchmark::State& state) {
  static EpochManager epoch;
  for (auto _ : state) {
    EpochGuard guard(epoch);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EpochGuard)->ThreadRange(1, 16);

struct Row {
  uint64_t key;
  uint64_t value;
  uint64_t pad;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class IndexFixture : public benchmark::Fixture {
 public:
  static constexpr uint64_t kRows = 100000;

  void SetUp(const benchmark::State&) override {
    if (table_ != nullptr) return;
    TableDef def;
    def.name = "bench";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, kRows, true});
    table_ = new Table(0, def);
    for (uint64_t k = 0; k < kRows; ++k) {
      Row row{k, k, 0};
      Version* v = table_->AllocateVersion(&row);
      v->begin.store(beginword::MakeTimestamp(1));
      table_->InsertIntoAllIndexes(v);
    }
  }

  static Table* table_;
};
Table* IndexFixture::table_ = nullptr;

BENCHMARK_DEFINE_F(IndexFixture, Probe)(benchmark::State& state) {
  Random rng(state.thread_index());
  HashIndex& index = table_->index(0);
  for (auto _ : state) {
    uint64_t key = rng.Uniform(kRows);
    Version* found = nullptr;
    index.ScanBucket(key, [&](Version* v) {
      if (index.KeyOf(v) == key) {
        found = v;
        return false;
      }
      return true;
    });
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK_REGISTER_F(IndexFixture, Probe)->ThreadRange(1, 8);

BENCHMARK_DEFINE_F(IndexFixture, VisibilityCheck)(benchmark::State& state) {
  TxnTable txn_table;
  StatsCollector stats;
  Transaction self(1, IsolationLevel::kReadCommitted, false, false);
  txn_table.Insert(&self);
  VisibilityContext ctx;
  ctx.self = &self;
  ctx.txn_table = &txn_table;
  ctx.stats = &stats;

  Random rng(state.thread_index());
  HashIndex& index = table_->index(0);
  for (auto _ : state) {
    uint64_t key = rng.Uniform(kRows);
    index.ScanBucket(key, [&](Version* v) {
      if (index.KeyOf(v) != key) return true;
      benchmark::DoNotOptimize(CheckVisibility(ctx, v, 100).visible);
      return false;
    });
  }
  txn_table.Remove(1);
}
BENCHMARK_REGISTER_F(IndexFixture, VisibilityCheck);

/// Version allocation churn, slab vs heap (the alloc_bench axis, inside the
/// google-benchmark harness): each thread keeps a small FIFO ring of live
/// versions, the shape GC-driven recycling produces.
template <bool kUseSlab>
void BM_VersionAllocFree(benchmark::State& state) {
  static Table* table = [] {
    TableDef def;
    def.name = kUseSlab ? "alloc_slab" : "alloc_heap";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 64, true});
    return new Table(0, def, TableMemoryOptions{kUseSlab, nullptr});
  }();
  Row row{1, 2, 3};
  constexpr uint32_t kLive = 64;
  std::vector<Version*> ring(kLive, nullptr);
  uint32_t cursor = 0;
  for (auto _ : state) {
    if (ring[cursor] != nullptr) table->FreeUnpublishedVersion(ring[cursor]);
    Version* v = table->AllocateVersion(&row);
    benchmark::DoNotOptimize(v);
    ring[cursor] = v;
    cursor = (cursor + 1) % kLive;
  }
  for (Version* v : ring) {
    if (v != nullptr) table->FreeUnpublishedVersion(v);
  }
}
BENCHMARK(BM_VersionAllocFree<false>)->Name("BM_VersionAllocFree/heap")
    ->ThreadRange(1, 8);
BENCHMARK(BM_VersionAllocFree<true>)->Name("BM_VersionAllocFree/slab")
    ->ThreadRange(1, 8);

}  // namespace
}  // namespace mvstore

BENCHMARK_MAIN();
