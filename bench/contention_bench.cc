// Contention microbench: pure Begin/Commit loops, zero data access.
//
// Isolates the cross-transaction shared state of the MV hot path -- the
// timestamp clock, the transaction table, the epoch manager, the stat
// counters -- from everything the other benches also measure (index probes,
// version chains, payload copies). Section 6 of the paper singles out
// timestamp acquisition as "the only critical section shared by all
// transactions"; this bench is that critical section in a loop, so it is
// the most sensitive detector of a serialization regression on it.
//
// Extra axis beyond the common flags:
//   --block N   end-timestamp block size (DatabaseOptions::ts_block_size);
//               1 reproduces the unbatched fetch_add-per-commit behavior.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace mvstore;
  using namespace mvstore::bench;

  Flags flags(argc, argv);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint32_t block =
      static_cast<uint32_t>(flags.GetUint("block", 16));
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("# contention: empty Begin/Commit transactions, Read "
              "Committed, ts block=%u, %.2fs/point\n",
              block, seconds);
  std::printf("%-8s", "threads");
  std::vector<Scheme> schemes = SchemesToRun(flags);
  for (Scheme s : schemes) std::printf("%14s", SchemeName(s));
  std::printf("   (transactions/sec)\n");

  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<std::string> labels;
  for (Scheme s : schemes) {
    DatabaseOptions opts = MakeOptions(s, flags);
    opts.ts_block_size = block;
    // Non-default block sizes tag the row label so ablation runs do not
    // merge with the default rows in bench_report.sh medians.
    std::string label = SchemeLabel(s, opts);
    if (block != TimestampGenerator::kDefaultBlockSize) {
      label += "+block" + std::to_string(block);
    }
    labels.push_back(label);
    dbs.push_back(std::make_unique<Database>(opts));
  }

  for (uint32_t threads : ThreadSweep(max_threads)) {
    std::printf("%-8u", threads);
    for (size_t i = 0; i < schemes.size(); ++i) {
      Database& db = *dbs[i];
      RunResult r = RunFixedDuration(
          threads, seconds,
          [&](uint32_t, std::atomic<bool>& stop, WorkerCounters& counters) {
            while (!stop.load(std::memory_order_relaxed)) {
              Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
              if (db.Commit(txn).ok()) {
                ++counters.committed;
              } else {
                ++counters.aborted;
              }
            }
          });
      std::printf("%14.0f", r.tps());
      json.AddRow(labels[i], threads, r.tps(), r.aborted);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
