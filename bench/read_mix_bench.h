// Shared driver for the short read-only transaction mix experiments
// (paper Figures 6 and 7).
#pragma once

#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

namespace mvstore {
namespace bench {

/// Fixed MPL; x-axis = fraction of read-only transactions (R=10, W=0) mixed
/// with update transactions (R=10, W=2); Read Committed.
inline int RunReadMixBench(int argc, char** argv, uint64_t default_rows,
                           const char* figure_name) {
  Flags flags(argc, argv);
  const uint64_t rows =
      flags.GetUint("rows", flags.Has("full") ? 10000000 : default_rows);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("# %s: read-only mix, N=%llu, MPL=%u, Read Committed\n",
              figure_name, static_cast<unsigned long long>(rows), threads);
  std::printf("%-10s", "read_pct");
  std::vector<Scheme> schemes = SchemesToRun(flags);
  for (Scheme s : schemes) std::printf("%14s", SchemeName(s));
  std::printf("   (transactions/sec)\n");

  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<TableId> tables;
  std::vector<std::string> labels;
  for (Scheme s : schemes) {
    DatabaseOptions opts = MakeOptions(s, flags);
    labels.push_back(SchemeLabel(s, opts));
    dbs.push_back(std::make_unique<Database>(opts));
    tables.push_back(workload::CreateAndLoadRows(*dbs.back(), rows));
  }

  for (uint32_t read_pct : {0u, 20u, 40u, 60u, 80u, 100u}) {
    std::printf("%-10u", read_pct);
    for (size_t i = 0; i < schemes.size(); ++i) {
      Database& db = *dbs[i];
      TableId table = tables[i];
      LatencyProbe probe(db, obs::Hist::kCommitTotal);
      RunResult r = RunFixedDuration(
          threads, seconds,
          [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
            Random rng(0xFEED + tid);
            while (!stop.load(std::memory_order_relaxed)) {
              Status s;
              if (rng.PercentChance(read_pct)) {
                s = workload::RunReadOnlyTxn(db, table, rng, rows, 10,
                                             IsolationLevel::kReadCommitted);
              } else {
                s = workload::RunUpdateTxn(db, table, rng, rows, 10, 2,
                                           IsolationLevel::kReadCommitted);
              }
              if (s.ok()) {
                ++c.committed;
              } else {
                ++c.aborted;
              }
            }
          });
      probe.Finish();
      std::printf("%14.0f", r.tps());
      // read_pct is the x-axis here; encode it in the scheme label so the
      // common row shape stays {bench, scheme, threads, tps, aborts, ...}.
      json.AddRow(labels[i] + "@read" + std::to_string(read_pct), threads,
                  r.tps(), r.aborted, probe);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace bench
}  // namespace mvstore
