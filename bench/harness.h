// Shared benchmark harness: fixed-duration multi-threaded throughput runs
// with paper-style tabular output.
//
// Reproduces the experimental methodology of paper Section 5: a fixed
// multiprogramming level (one worker thread per concurrent transaction, no
// think time), throughput measured over a fixed wall-clock window, swept
// over thread counts / read mixes / isolation levels depending on the
// figure. The paper measures on a 2-socket 24-thread box; DefaultMaxThreads
// below adapts the multiprogramming cap to the host.
//
// Every bench binary accepts:
//   --seconds S     measurement window per data point (default 0.5)
//   --rows N        table size (default differs per experiment)
//   --threads T     max multiprogramming level (default min(24, hw))
//   --scheme X      restrict to one scheme (1V, MV/L, MV/O)
//   --slab 0|1      memory subsystem: slab recycling (default) vs heap
//   --json PATH     additionally emit machine-readable result rows
//   --full          paper-scale parameters (10M rows etc.)
// Defaults are sized so that `for b in build/bench/*; do $b; done` finishes
// in minutes on a laptop; --full reproduces the paper's scale.
// scripts/bench_report.sh runs the suite and merges the --json outputs into
// a dated BENCH_<date>.json at the repo root (the perf trajectory record).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.h"
#include "common/types.h"
#include "core/database.h"
#include "obs/histogram.h"

namespace mvstore {
namespace bench {

/// Per-worker counters, aggregated after the run.
struct WorkerCounters {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Second transaction class (read-only txns in mixed workloads).
  uint64_t committed_class2 = 0;
};

struct RunResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t committed_class2 = 0;
  double tps() const { return committed / seconds; }
  double tps_class2() const { return committed_class2 / seconds; }
  double abort_rate() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0.0 : static_cast<double>(aborted) / total;
  }
};

/// Run `worker(tid, stop, counters)` on `threads` threads for `seconds`.
/// The worker loops until `stop` becomes true.
template <typename WorkerFn>
RunResult RunFixedDuration(uint32_t threads, double seconds,
                           WorkerFn&& worker) {
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<WorkerCounters> counters(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) CpuRelax();
      worker(t, stop, counters[t]);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  Timer timer;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<uint64_t>(seconds * 1e6)));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  for (const auto& c : counters) {
    result.committed += c.committed;
    result.aborted += c.aborted;
    result.committed_class2 += c.committed_class2;
  }
  return result;
}

/// Minimal flag parser: --key value.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key = arg.substr(2);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_.emplace_back(key, argv[++i]);
      } else {
        values_.emplace_back(key, "1");  // boolean flag
      }
    }
  }

  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::stoull(v);
    }
    return fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return std::stod(v);
    }
    return fallback;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return v;
    }
    return fallback;
  }

  bool Has(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

/// Schemes in the paper's presentation order.
inline std::vector<Scheme> SchemesToRun(const Flags& flags) {
  std::string only = flags.GetString("scheme", "");
  std::vector<Scheme> all = {Scheme::kSingleVersion,
                             Scheme::kMultiVersionLocking,
                             Scheme::kMultiVersionOptimistic};
  if (only.empty()) return all;
  std::vector<Scheme> picked;
  for (Scheme s : all) {
    if (only == SchemeName(s)) picked.push_back(s);
  }
  return picked.empty() ? all : picked;
}

inline uint32_t DefaultMaxThreads() {
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  // The paper caps the multiprogramming level at the machine's 24 hardware
  // threads. We cap at ours, but never below 8: the contention phenomena
  // under study (lock waits, dependency stalls, reader/writer interference)
  // require real multiprogramming even when cores are scarce; absolute
  // scaling numbers on an oversubscribed box are then meaningless, but the
  // relative shapes remain.
  uint32_t cap = hw > 24 ? 24 : hw;
  return cap < 8 ? 8 : cap;
}

/// Thread counts for scalability sweeps: 1, 2, 4, ... up to max.
inline std::vector<uint32_t> ThreadSweep(uint32_t max_threads) {
  std::vector<uint32_t> sweep;
  for (uint32_t t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

inline DatabaseOptions MakeOptions(Scheme scheme) {
  DatabaseOptions opts;
  opts.scheme = scheme;
  opts.log_mode = LogMode::kAsync;  // paper: asynchronous group commit
  // A real group window. At 0 every commit buys the flusher a wakeup and
  // the box a context switch -- per-commit flushing, not group commit; a
  // window two orders of magnitude above the per-record cost batches
  // hundreds of commits per flush and roughly doubles single-thread MV
  // throughput on a small box.
  opts.group_commit_us = 100;
  return opts;
}

/// Bench slug for result rows: the binary's basename (e.g.
/// "fig5_scalability_high").
inline std::string BenchSlug(const char* argv0) {
  std::string s = argv0;
  size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// MakeOptions honoring the common command-line axes (`--slab`, `--group`).
inline DatabaseOptions MakeOptions(Scheme scheme, const Flags& flags) {
  DatabaseOptions opts = MakeOptions(scheme);
  opts.use_slab_allocator = flags.GetUint("slab", 1) != 0;
  opts.group_commit_us =
      static_cast<uint32_t>(flags.GetUint("group", opts.group_commit_us));
  return opts;
}

/// Label for result rows: scheme name, tagged when the heap fallback is on
/// (so slab-vs-heap rows of the same bench are distinguishable).
inline std::string SchemeLabel(Scheme scheme, const DatabaseOptions& opts) {
  std::string label = SchemeName(scheme);
  if (!opts.use_slab_allocator) label += "+heap";
  return label;
}

/// Per-point latency quantiles from the engine's striped histograms:
/// snapshot one histogram before the measured window, diff after, report
/// the window's p50/p99 in microseconds. Costs two cold-path merges per
/// point — nothing on the hot path, so probing does not perturb tps.
class LatencyProbe {
 public:
  explicit LatencyProbe(Database& db, obs::Hist hist = obs::Hist::kCommitTotal)
      : db_(&db), hist_(hist), delta_(db.hists().Snapshot(hist)) {}

  /// Close the window: from here on the quantiles cover exactly the
  /// records made since construction.
  void Finish() {
    obs::HistogramData now = db_->hists().Snapshot(hist_);
    now.Subtract(delta_);
    delta_ = now;
  }

  double p50_us() const {
    return obs::TicksToMicros(delta_.ValueAtQuantile(0.5));
  }
  double p99_us() const {
    return obs::TicksToMicros(delta_.ValueAtQuantile(0.99));
  }

 private:
  Database* db_;
  obs::Hist hist_;
  obs::HistogramData delta_;
};

/// Collects benchmark result rows and writes them as a JSON array:
///   [{"bench": "...", "scheme": "...", "threads": N,
///     "tps": T, "aborts": A, "p50_us": ..., "p99_us": ...}, ...]
/// Enabled by `--json PATH`; a default-constructed reporter is a no-op, so
/// benches can call AddRow unconditionally. The latency fields come from a
/// LatencyProbe when the bench wires one up, and are 0.0 otherwise — the
/// keys are always present so downstream tooling sees one schema.
class JsonReporter {
 public:
  JsonReporter() = default;
  JsonReporter(std::string path, std::string bench)
      : path_(std::move(path)), bench_(std::move(bench)) {}
  JsonReporter(const Flags& flags, std::string bench)
      : JsonReporter(flags.GetString("json", ""), std::move(bench)) {}

  ~JsonReporter() { Write(); }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return !path_.empty(); }

  void AddRow(const std::string& scheme, uint32_t threads, double tps,
              uint64_t aborts, double p50_us = 0.0, double p99_us = 0.0) {
    if (!enabled()) return;
    char row[320];
    std::snprintf(row, sizeof(row),
                  "{\"bench\": \"%s\", \"scheme\": \"%s\", \"threads\": %u, "
                  "\"tps\": %.1f, \"aborts\": %llu, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f}",
                  bench_.c_str(), scheme.c_str(), threads, tps,
                  static_cast<unsigned long long>(aborts), p50_us, p99_us);
    rows_.push_back(row);
  }

  void AddRow(const std::string& scheme, uint32_t threads, double tps,
              uint64_t aborts, const LatencyProbe& probe) {
    AddRow(scheme, threads, tps, aborts, probe.p50_us(), probe.p99_us());
  }

  /// Write the file now (also runs at destruction; idempotent).
  void Write() {
    if (!enabled() || written_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    written_ = true;
  }

 private:
  std::string path_;
  std::string bench_;
  std::vector<std::string> rows_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace mvstore
