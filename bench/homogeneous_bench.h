// Shared driver for the homogeneous-workload scalability experiments
// (paper Figures 4 and 5).
#pragma once

#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

namespace mvstore {
namespace bench {

/// Throughput of the R=10/W=2 update workload at each multiprogramming
/// level, for each scheme, printed as a paper-style table.
inline int RunScalabilityBench(int argc, char** argv, uint64_t default_rows,
                               const char* figure_name) {
  Flags flags(argc, argv);
  const uint64_t rows =
      flags.GetUint("rows", flags.Has("full") ? 10000000 : default_rows);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint32_t reads = static_cast<uint32_t>(flags.GetUint("reads", 10));
  const uint32_t writes = static_cast<uint32_t>(flags.GetUint("writes", 2));
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("# %s: homogeneous workload, R=%u W=%u, N=%llu rows, "
              "Read Committed, %.2fs/point\n",
              figure_name, reads, writes,
              static_cast<unsigned long long>(rows), seconds);
  std::printf("%-8s", "threads");
  std::vector<Scheme> schemes = SchemesToRun(flags);
  for (Scheme s : schemes) std::printf("%14s", SchemeName(s));
  std::printf("   (transactions/sec)\n");

  std::vector<uint32_t> sweep = ThreadSweep(max_threads);
  // One database per scheme, reused across thread counts (as in the paper:
  // the table is loaded once).
  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<TableId> tables;
  std::vector<std::string> labels;
  for (Scheme s : schemes) {
    DatabaseOptions opts = MakeOptions(s, flags);
    labels.push_back(SchemeLabel(s, opts));
    dbs.push_back(std::make_unique<Database>(opts));
    tables.push_back(workload::CreateAndLoadRows(*dbs.back(), rows));
  }

  for (uint32_t threads : sweep) {
    std::printf("%-8u", threads);
    for (size_t i = 0; i < schemes.size(); ++i) {
      Database& db = *dbs[i];
      TableId table = tables[i];
      LatencyProbe probe(db, obs::Hist::kCommitTotal);
      RunResult r = RunFixedDuration(
          threads, seconds,
          [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& counters) {
            Random rng(0xC0FFEE + tid);
            while (!stop.load(std::memory_order_relaxed)) {
              Status s = workload::RunUpdateTxn(
                  db, table, rng, rows, reads, writes,
                  IsolationLevel::kReadCommitted);
              if (s.ok()) {
                ++counters.committed;
              } else {
                ++counters.aborted;
              }
            }
          });
      probe.Finish();
      std::printf("%14.0f", r.tps());
      json.AddRow(labels[i], threads, r.tps(), r.aborted, probe);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace bench
}  // namespace mvstore
