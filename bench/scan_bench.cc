// Range-scan benchmark over the ordered secondary index (no paper exhibit:
// the paper's engines index through hash buckets only, so this measures the
// new access path that opens the reporting/ordered-read workload class).
//
// Workload: N rows keyed 0..N-1 with an ordered secondary index on the same
// key space. Each worker repeatedly scans a random [lo, lo+range) interval
// at Snapshot isolation (1V: Repeatable Read — its closest consistent-read
// mode) while a fixed share of workers runs single-row updates, so MV scans
// traverse real version chains and 1V scans contend on key locks.
//
// Axes: range size (--range R, or the default {10, 100, 1000} sweep) ×
// multiprogramming level × scheme. Rows report scans/second; the update
// class rides along in committed_class2.
//
//   --range R      single range size instead of the sweep
//   --update_pct P percent of workers running updates (default 25)
// plus the common harness flags (--seconds --rows --threads --scheme
// --slab --json --full). JSON rows follow the harness shape, with the
// range size folded into the scheme label ("MV/O/r100").
#include "bench/harness.h"
#include "common/random.h"

namespace mvstore {
namespace bench {
namespace {

struct Row {
  uint64_t key;
  uint64_t ordered_key;
  uint64_t value;
  char padding[24];  // paper-style ~48B payload
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }
uint64_t RowOrderedKey(const void* p) {
  return static_cast<const Row*>(p)->ordered_key;
}

TableId CreateAndLoad(Database& db, uint64_t rows) {
  TableDef def;
  def.name = "scan_rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, rows, /*unique=*/true});
  IndexDef ordered{&RowOrderedKey, rows, /*unique=*/false};
  ordered.ordered = true;
  def.indexes.push_back(ordered);
  TableId table = db.CreateTable(def);
  for (uint64_t k = 0; k < rows; ++k) {
    Row row{};
    row.key = k;
    row.ordered_key = k;
    row.value = k;
    Status s = db.RunTransaction(
        IsolationLevel::kReadCommitted,
        [&](Txn* t) { return db.Insert(t, table, &row); });
    if (!s.ok()) {
      std::fprintf(stderr, "load failed at row %llu\n",
                   static_cast<unsigned long long>(k));
      std::exit(1);
    }
  }
  return table;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t rows =
      flags.GetUint("rows", flags.Has("full") ? 10000000 : 100000);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint32_t update_pct =
      static_cast<uint32_t>(flags.GetUint("update_pct", 25));
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::vector<uint64_t> ranges;
  if (flags.Has("range")) {
    ranges.push_back(flags.GetUint("range", 100));
  } else {
    ranges = {10, 100, 1000};
  }

  std::printf("# scan_bench: ordered-index range scans, N=%llu rows, "
              "%u%% update workers, Snapshot/RR, %.2fs/point\n",
              static_cast<unsigned long long>(rows), update_pct, seconds);

  std::vector<Scheme> schemes = SchemesToRun(flags);
  std::vector<std::unique_ptr<Database>> dbs;
  std::vector<TableId> tables;
  std::vector<std::string> labels;
  for (Scheme s : schemes) {
    DatabaseOptions opts = MakeOptions(s, flags);
    labels.push_back(SchemeLabel(s, opts));
    dbs.push_back(std::make_unique<Database>(opts));
    tables.push_back(CreateAndLoad(*dbs.back(), rows));
  }

  std::vector<uint32_t> sweep = ThreadSweep(max_threads);
  for (uint64_t range : ranges) {
    std::printf("\n## range=%llu (scans/sec; updates/sec in parens)\n",
                static_cast<unsigned long long>(range));
    std::printf("%-8s", "threads");
    for (const std::string& label : labels) {
      std::printf("%22s", label.c_str());
    }
    std::printf("\n");
    for (uint32_t threads : sweep) {
      std::printf("%-8u", threads);
      for (size_t i = 0; i < schemes.size(); ++i) {
        Database& db = *dbs[i];
        TableId table = tables[i];
        // 1V has no snapshots; RR is its consistent-read mode.
        const IsolationLevel scan_iso =
            schemes[i] == Scheme::kSingleVersion
                ? IsolationLevel::kRepeatableRead
                : IsolationLevel::kSnapshot;
        RunResult r = RunFixedDuration(
            threads, seconds,
            [&](uint32_t tid, std::atomic<bool>& stop,
                WorkerCounters& counters) {
              Random rng(0x5CA9 + tid * 7919);
              const bool updater =
                  threads > 1 && (tid * 100 / threads) < update_pct;
              while (!stop.load(std::memory_order_relaxed)) {
                if (updater) {
                  uint64_t key = rng.Uniform(rows);
                  Status s = db.RunTransaction(
                      IsolationLevel::kReadCommitted,
                      [&](Txn* t) {
                        return db.Update(t, table, 0, key, [](void* p) {
                          static_cast<Row*>(p)->value += 1;
                        });
                      },
                      /*max_retries=*/10);
                  if (s.ok()) {
                    ++counters.committed_class2;
                  } else {
                    ++counters.aborted;
                  }
                  continue;
                }
                uint64_t lo = rng.Uniform(rows > range ? rows - range : 1);
                uint64_t visited = 0;
                Status s = db.RunTransaction(
                    scan_iso,
                    [&](Txn* t) {
                      visited = 0;
                      return db.ScanRange(t, table, 1, lo, lo + range - 1,
                                          nullptr, [&](const void*) {
                                            ++visited;
                                            return true;
                                          });
                    },
                    /*max_retries=*/10);
                if (s.ok()) {
                  ++counters.committed;
                } else {
                  ++counters.aborted;
                }
              }
            });
        std::printf("%14.0f (%5.0f)", r.tps(), r.tps_class2());
        json.AddRow(labels[i] + "/r" + std::to_string(range), threads,
                    r.tps(), r.aborted);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mvstore

int main(int argc, char** argv) { return mvstore::bench::Run(argc, argv); }
