// Figure 5: transaction throughput vs multiprogramming level under HIGH
// contention (hotspot: N=1,000 rows). Expected shape: 1V peaks early and
// flattens (lock conflicts); MV/O stays slightly ahead of both locking
// schemes; all remain above ~1M tx/s equivalent for their scale.
#include "bench/homogeneous_bench.h"

int main(int argc, char** argv) {
  return mvstore::bench::RunScalabilityBench(argc, argv,
                                             /*default_rows=*/1000,
                                             "Figure 5 (high contention)");
}
