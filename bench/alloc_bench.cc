// Version-allocation microbenchmark: slab recycling vs the global heap.
//
// Models the update hot path's memory traffic in isolation: every update
// transaction allocates a version (Table::AllocateVersion) and retires an
// old one. Each worker keeps a ring of live versions and, per operation,
// frees the oldest and allocates a fresh one -- FIFO churn, the pattern GC
// produces, and the one that defeats a malloc's LIFO fast caches.
//
//   --mode slab|heap|both   allocator under test (default both)
//   --live N                live versions per worker (default 256)
//   --seconds / --threads / --json as usual (bench/harness.h)
#include <memory>

#include "bench/harness.h"
#include "common/counters.h"
#include "storage/table.h"

using namespace mvstore;
using namespace mvstore::bench;

namespace {

struct Row {
  uint64_t key;
  uint64_t value;
  uint64_t pad;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

std::unique_ptr<Table> MakeTable(bool use_slab, StatsCollector* stats) {
  TableDef def;
  def.name = "alloc";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 64, true});
  return std::make_unique<Table>(0, std::move(def),
                                 TableMemoryOptions{use_slab, stats});
}

/// FIFO churn: allocations per second with `live` versions outstanding.
double RunChurn(Table& table, uint32_t threads, double seconds,
                uint32_t live) {
  RunResult r = RunFixedDuration(
      threads, seconds,
      [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& c) {
        Row row{tid, 0, 0};
        std::vector<Version*> ring(live, nullptr);
        uint32_t cursor = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (ring[cursor] != nullptr) {
            table.FreeUnpublishedVersion(ring[cursor]);
          }
          row.value = c.committed;
          ring[cursor] = table.AllocateVersion(&row);
          cursor = (cursor + 1) % live;
          ++c.committed;
        }
        for (Version* v : ring) {
          if (v != nullptr) table.FreeUnpublishedVersion(v);
        }
      });
  return r.tps();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint32_t live = static_cast<uint32_t>(flags.GetUint("live", 256));
  const std::string mode = flags.GetString("mode", "both");
  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("# alloc_bench: version churn, %u live versions/worker, "
              "%.2fs/point\n",
              live, seconds);
  std::printf("%-8s %14s %14s   (allocations/sec)\n", "threads", "heap",
              "slab");

  for (uint32_t threads : ThreadSweep(max_threads)) {
    std::printf("%-8u", threads);
    for (bool use_slab : {false, true}) {
      const char* label = use_slab ? "slab" : "heap";
      if (mode != "both" && mode != label) {
        std::printf("%14s", "-");
        continue;
      }
      StatsCollector stats;
      auto table = MakeTable(use_slab, &stats);
      double tps = RunChurn(*table, threads, seconds, live);
      std::printf("%14.0f", tps);
      json.AddRow(label, threads, tps, 0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
