// Figure 7: impact of short read-only transactions, HIGH contention
// (hotspot table of 1,000 rows). Expected shape: the MV schemes hold a
// clear advantage throughout (snapshot reads never conflict with writers);
// at 80% read-only the paper measures 63-73% higher MV throughput than 1V.
#include "bench/read_mix_bench.h"

int main(int argc, char** argv) {
  return mvstore::bench::RunReadMixBench(argc, argv, /*default_rows=*/1000,
                                         "Figure 7 (high contention)");
}
