// Server throughput: TATP transactions as whole-txn procedure calls over
// the service layer, swept over client connections × pipeline depth ×
// scheme × transport.
//
// Each client connection is one thread driving an MVClient: it queues
// `--depth` kCall frames ("tatp.mixed" — the spec's transaction mix, typed
// server-side from the call's seed), flushes the batch as one write, and
// reads the pipelined responses. Loopback rows measure the protocol +
// session + engine path with no kernel in the way; +tcp rows add real
// sockets through the epoll server. This is the service-layer counterpart
// of table4_tatp: same workload, but every transaction crosses the wire.
//
//   --seconds S        measurement window per point (default 0.5)
//   --subscribers N    TATP scale (default 10000; --full 100000)
//   --threads T        max client connections (default min(24, hw))
//   --depth D          pipelined calls per batch (default 8)
//   --scheme X         restrict to one scheme
//   --tcp 0|1          also run real-socket rows (default 1; auto-skipped
//                      where MVServer is unsupported)
//   --group_commit_us  log group-commit window (with --log_path)
//   --log_path PATH    file-backed redo log (default: in-memory sink)
//   --fsync 0|1        fsync flushed batches (default 0)
//   --follower 0|1     add the replication read axis (default 0): a live
//                      log-shipped follower behind the session layer, rows
//                      comparing pipelined read-only GET throughput served
//                      by the leader (":fread") vs the follower's
//                      replayed_ts snapshot (":fread+follower")
//   --json PATH        machine-readable rows; depth/transport fold into
//                      the scheme label ("MV/O:p8", "MV/O:p8+tcp")
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "client/client.h"
#include "client/tcp_transport.h"
#include "common/random.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "server/loopback.h"
#include "server/mv_server.h"
#include "server/server_core.h"
#include "workload/homogeneous.h"
#include "workload/tatp.h"

namespace mvstore {
namespace bench {
namespace {

struct BenchContext {
  Database* db = nullptr;
  Transport* transport = nullptr;
  uint32_t proc_id = 0;
  uint32_t depth = 1;
};

RunResult RunPoint(const BenchContext& ctx, uint32_t connections,
                   double seconds) {
  return RunFixedDuration(
      connections, seconds,
      [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& counters) {
        Status status;
        auto conn = ctx.transport->Connect(&status);
        if (conn == nullptr) return;  // admission refused: contribute zeros
        MVClient client(std::move(conn));
        Random rng(0x5EED5EED + tid);
        std::vector<WireResult> results;
        std::vector<uint8_t> arg(9);
        arg[8] = static_cast<uint8_t>(IsolationLevel::kReadCommitted);
        while (!stop.load(std::memory_order_relaxed) && client.connected()) {
          for (uint32_t i = 0; i < ctx.depth; ++i) {
            uint64_t seed = rng.Next();
            std::memcpy(arg.data(), &seed, 8);
            client.QueueCall(ctx.proc_id, arg.data(), arg.size());
          }
          results.clear();
          if (!client.FlushBatch(&results).ok()) break;
          for (const WireResult& r : results) {
            if (r.status.ok()) {
              ++counters.committed;
            } else {
              ++counters.aborted;
            }
          }
        }
      });
}

// --- follower read axis ------------------------------------------------------

constexpr uint64_t kFollowerRows = 4096;

void DefineFollowerRows(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(workload::Row24);
  def.indexes.push_back(
      IndexDef{&workload::Row24Key, kFollowerRows, /*unique=*/true});
  db.CreateTable(std::move(def));
}

/// Pipelined read-only GET batches through a session transport: one Begin +
/// `depth` GETs + Commit per flush; committed counts read transactions.
RunResult RunReadPoint(Transport& transport, uint32_t depth,
                       uint32_t connections, double seconds) {
  return RunFixedDuration(
      connections, seconds,
      [&](uint32_t tid, std::atomic<bool>& stop, WorkerCounters& counters) {
        Status status;
        auto conn = transport.Connect(&status);
        if (conn == nullptr) return;
        MVClient client(std::move(conn));
        Random rng(0xF0110 + tid);
        std::vector<WireResult> results;
        while (!stop.load(std::memory_order_relaxed) && client.connected()) {
          client.QueueBegin(IsolationLevel::kReadCommitted,
                            /*read_only=*/true);
          for (uint32_t i = 0; i < depth; ++i) {
            client.QueueGet(0, 0, rng.Uniform(kFollowerRows));
          }
          client.QueueCommit();
          results.clear();
          if (!client.FlushBatch(&results).ok()) break;
          if (!results.empty() && results.back().status.ok()) {
            ++counters.committed;
          } else {
            ++counters.aborted;
          }
        }
      });
}

}  // namespace
}  // namespace bench
}  // namespace mvstore

int main(int argc, char** argv) {
  using namespace mvstore;
  using namespace mvstore::bench;

  Flags flags(argc, argv);
  const double seconds = flags.GetDouble("seconds", 0.5);
  const bool full = flags.Has("full");
  const uint64_t subscribers =
      flags.GetUint("subscribers", full ? 100000 : 10000);
  const uint32_t max_threads =
      static_cast<uint32_t>(flags.GetUint("threads", DefaultMaxThreads()));
  const uint32_t depth =
      static_cast<uint32_t>(flags.GetUint("depth", 8));
  const bool run_tcp = flags.GetUint("tcp", 1) != 0;

  JsonReporter json(flags, BenchSlug(argv[0]));

  std::printf("server_bench: TATP over the service layer (%llu subscribers, "
              "depth %u)\n",
              static_cast<unsigned long long>(subscribers), depth);
  std::printf("%-14s %-10s %12s %12s %10s %10s %10s\n", "scheme", "transport",
              "conns", "tps", "aborts", "p50_us", "p99_us");

  for (Scheme scheme : SchemesToRun(flags)) {
    DatabaseOptions opts = MakeOptions(scheme, flags);
    opts.log_path = flags.GetString("log_path", "");
    if (opts.log_path.empty()) opts.log_mode = LogMode::kAsync;
    opts.fsync_log = flags.GetUint("fsync", 0) != 0;
    opts.group_commit_us =
        static_cast<uint32_t>(flags.GetUint("group_commit_us", 0));
    Database db(opts);
    tatp::TatpDatabase tatp_db = tatp::LoadTatp(db, subscribers);
    tatp::RegisterTatpProcedures(db, tatp_db);

    // Shared admission config: sessions for every swept connection count.
    ServerCoreOptions core_opts;
    core_opts.max_sessions = max_threads + 8;
    core_opts.max_pipeline = depth < 64 ? 64 : depth;

    BenchContext ctx;
    ctx.db = &db;
    ctx.depth = depth == 0 ? 1 : depth;

    // --- loopback rows ---
    {
      ServerCore core(db, core_opts);
      LoopbackTransport loopback(core);
      int64_t proc = db.FindProcedure("tatp.mixed");
      ctx.proc_id = static_cast<uint32_t>(proc);
      ctx.transport = &loopback;
      for (uint32_t conns : ThreadSweep(max_threads)) {
        LatencyProbe probe(db, obs::Hist::kCommitTotal);
        RunResult r = RunPoint(ctx, conns, seconds);
        probe.Finish();
        std::string label = SchemeLabel(scheme, opts) + ":p" +
                            std::to_string(ctx.depth);
        std::printf("%-14s %-10s %12u %12.0f %10llu %10.1f %10.1f\n",
                    label.c_str(), "loopback", conns, r.tps(),
                    static_cast<unsigned long long>(r.aborted),
                    probe.p50_us(), probe.p99_us());
        json.AddRow(label, conns, r.tps(), r.aborted, probe);
      }
    }

    // --- real-socket rows ---
    if (run_tcp) {
      ServerOptions srv_opts;
      srv_opts.port = 0;  // ephemeral
      srv_opts.workers = 2;
      srv_opts.core = core_opts;
      MVServer server(db, srv_opts);
      if (!server.Start().ok()) {
        std::printf("(tcp rows skipped: MVServer unavailable here)\n");
        continue;
      }
      TcpTransport tcp("127.0.0.1", server.port());
      ctx.transport = &tcp;
      for (uint32_t conns : ThreadSweep(max_threads)) {
        LatencyProbe probe(db, obs::Hist::kCommitTotal);
        RunResult r = RunPoint(ctx, conns, seconds);
        probe.Finish();
        std::string label = SchemeLabel(scheme, opts) + ":p" +
                            std::to_string(ctx.depth) + "+tcp";
        std::printf("%-14s %-10s %12u %12.0f %10llu %10.1f %10.1f\n",
                    label.c_str(), "tcp", conns, r.tps(),
                    static_cast<unsigned long long>(r.aborted),
                    probe.p50_us(), probe.p99_us());
        json.AddRow(label, conns, r.tps(), r.aborted, probe);
      }
      server.Stop();
    }

    // --- follower read rows ---
    if (flags.GetUint("follower", 0) != 0) {
#if !defined(__linux__)
      std::printf("(follower rows skipped: replication is Linux-only)\n");
#else
      const std::string dir =
          (std::filesystem::temp_directory_path() / "mvstore_server_bench_repl")
              .string();
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir + "/leader");
      std::filesystem::create_directories(dir + "/follower");
      DatabaseOptions lopts;
      lopts.scheme = scheme;
      lopts.log_mode = LogMode::kAsync;
      lopts.log_path = dir + "/leader/wal";
      lopts.log_segment_bytes = 1 << 20;
      lopts.checkpoint_path = dir + "/leader/ckpt";
      Status st;
      auto leader = Database::Open(lopts, DefineFollowerRows, &st);
      if (leader == nullptr) {
        std::printf("(follower rows skipped: %s)\n", st.ToString().c_str());
        continue;
      }
      for (uint64_t k = 0; k < kFollowerRows; ++k) {
        Txn* txn = leader->Begin(IsolationLevel::kReadCommitted);
        workload::Row24 row{k, k * 10, 0};
        leader->Insert(txn, 0, &row);
        leader->Commit(txn);
      }
      ReplShipper shipper(*leader);
      std::unique_ptr<Replica> replica;
      if (shipper.Start().ok()) {
        ReplicaOptions ropts;
        ropts.db = lopts;
        ropts.db.log_path = dir + "/follower/wal";
        ropts.db.checkpoint_path = dir + "/follower/ckpt";
        ropts.define_schema = DefineFollowerRows;
        ropts.leader_port = shipper.port();
        replica = Replica::Open(ropts, &st);
      }
      const Timestamp target = leader->LastCommitTimestamp();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (replica != nullptr && replica->replayed_ts() < target &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (replica == nullptr || replica->replayed_ts() < target) {
        std::printf("(follower rows skipped: follower never caught up)\n");
      } else {
        ServerCore lcore(*leader, core_opts);
        LoopbackTransport ltrans(lcore);
        ServerCore fcore(replica->db(), core_opts);
        fcore.SetReplica(replica.get());
        LoopbackTransport ftrans(fcore);
        for (uint32_t conns : ThreadSweep(max_threads)) {
          // Read rows: per-GET latency, from each side's own engine.
          LatencyProbe lprobe(*leader, obs::Hist::kReadLatency);
          RunResult lr = RunReadPoint(ltrans, ctx.depth, conns, seconds);
          lprobe.Finish();
          std::string llabel = SchemeLabel(scheme, opts) + ":fread";
          std::printf("%-14s %-10s %12u %12.0f %10llu %10.1f %10.1f\n",
                      llabel.c_str(), "loopback", conns, lr.tps(),
                      static_cast<unsigned long long>(lr.aborted),
                      lprobe.p50_us(), lprobe.p99_us());
          json.AddRow(llabel, conns, lr.tps(), lr.aborted, lprobe);
          LatencyProbe fprobe(replica->db(), obs::Hist::kReadLatency);
          RunResult fr = RunReadPoint(ftrans, ctx.depth, conns, seconds);
          fprobe.Finish();
          std::string flabel = SchemeLabel(scheme, opts) + ":fread+follower";
          std::printf("%-14s %-10s %12u %12.0f %10llu %10.1f %10.1f\n",
                      flabel.c_str(), "loopback", conns, fr.tps(),
                      static_cast<unsigned long long>(fr.aborted),
                      fprobe.p50_us(), fprobe.p99_us());
          json.AddRow(flabel, conns, fr.tps(), fr.aborted, fprobe);
        }
        fcore.SetReplica(nullptr);
      }
      if (replica != nullptr) replica->Stop();
      replica.reset();
      shipper.Stop();
      leader.reset();
      std::filesystem::remove_all(dir);
#endif
    }
  }
  return 0;
}
