#!/usr/bin/env bash
# Run the benchmark suite and write a dated, machine-readable result file
# (BENCH_<date>.json at the repo root) -- the repo's perf trajectory record.
#
# Usage: scripts/bench_report.sh [out.json]
#   BUILD_DIR=build          build tree holding the bench binaries
#   BENCH_SECONDS=0.3        measurement window per data point
#   BENCH_THREADS=<default>  max multiprogramming level
#   BENCH_REPEATS=1          runs per bench; rows are per-point medians
#
# Each bench emits a JSON array of {bench, scheme, threads, tps, aborts,
# p50_us, p99_us} rows via --json (the latency quantiles come from the
# engine's own histograms; see docs/BENCHMARKS.md "Latency columns");
# this script merges them, taking the per-point median
# across repeats (single-run numbers on a shared/small box are noisy). The
# slab-sensitive benches run twice (memory subsystem on and off) so every
# report carries a slab-vs-heap comparison alongside the absolute numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SECONDS_PER_POINT="${BENCH_SECONDS:-0.3}"

# Benchmark numbers must come from a build with fault-injection sites
# compiled out entirely (-DMVSTORE_FAILPOINTS_ENABLED=OFF): even unarmed
# sites cost an atomic load on the log/commit hot path, and a report
# silently including that cost would poison the perf trajectory.
if ! grep -q '^MVSTORE_FAILPOINTS_ENABLED:BOOL=OFF$' \
    "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null; then
  echo "bench_report.sh: ${BUILD_DIR} was not configured with" >&2
  echo "  -DMVSTORE_FAILPOINTS_ENABLED=OFF -- benchmark builds must" >&2
  echo "  compile failpoints out. Reconfigure with:" >&2
  echo "    cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release \\" >&2
  echo "      -DMVSTORE_FAILPOINTS_ENABLED=OFF && cmake --build ${BUILD_DIR} -j" >&2
  exit 2
fi
OUT="${1:-BENCH_$(date +%Y%m%d).json}"
THREAD_FLAG=()
if [[ -n "${BENCH_THREADS:-}" ]]; then
  THREAD_FLAG=(--threads "${BENCH_THREADS}")
fi

REPEATS="${BENCH_REPEATS:-1}"
tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

run() {
  local name="$1"; shift
  echo "== ${name}: $*" >&2
  "$@" --seconds "${SECONDS_PER_POINT}" "${THREAD_FLAG[@]}" \
      --json "${tmp}/${name}.json" >&2
}

for ((rep = 0; rep < REPEATS; ++rep)) do
  run "alloc.${rep}"     "${BUILD_DIR}/alloc_bench"
  run "fig5_slab.${rep}" "${BUILD_DIR}/fig5_scalability_high"
  run "fig5_heap.${rep}" "${BUILD_DIR}/fig5_scalability_high" --slab 0
  # Coordination cost in isolation (empty Begin/Commit loops), with the
  # unbatched-timestamp ablation alongside (rows tagged +block1).
  run "contention.${rep}"   "${BUILD_DIR}/contention_bench"
  run "contention_b1.${rep}" "${BUILD_DIR}/contention_bench" --block 1
  run "tatp_slab.${rep}" "${BUILD_DIR}/table4_tatp"
  run "tatp_heap.${rep}" "${BUILD_DIR}/table4_tatp" --slab 0
  # Recovery time (log replay records/sec over a replay-thread sweep);
  # ignores --seconds, sized by RECOVERY_TXNS instead. 50K keeps the 12
  # recoveries (3 schemes x 4 thread counts) proportionate to the rest of
  # the suite on a small box; rows report a rate, so they stay comparable.
  run "recovery.${rep}"  "${BUILD_DIR}/recovery_bench" \
      --txns "${RECOVERY_TXNS:-50000}"
  # Service layer: TATP as pipelined procedure calls, loopback + tcp rows.
  run "server.${rep}"    "${BUILD_DIR}/server_bench" \
      --depth "${SERVER_DEPTH:-8}"
done

python3 - "${OUT}" "${tmp}"/*.json <<'EOF'
import json, os, statistics, sys
out, *files = sys.argv[1:]
# Files are named <bench>.<rep>.json; the distinct rep suffixes are the
# repeat count (no hand-maintained bench-count constant).
reps = {os.path.basename(f).rsplit(".", 2)[1] for f in files}
samples = {}  # (bench, scheme, threads) -> [row, ...], insertion-ordered
for f in files:
    with open(f) as fh:
        for row in json.load(fh):
            key = (row["bench"], row["scheme"], row["threads"])
            samples.setdefault(key, []).append(row)
rows = []
for runs in samples.values():
    median = sorted(runs, key=lambda r: r["tps"])[len(runs) // 2]
    rows.append({**median, "runs": len(runs)})
with open(out, "w") as fh:
    json.dump(rows, fh, indent=1)
    fh.write("\n")
print(f"wrote {out}: {len(rows)} points (median of {len(reps)} runs)")
EOF
