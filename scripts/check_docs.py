#!/usr/bin/env python3
"""Markdown lint + intra-repo link check for the documentation suite.

Checked files: README.md and docs/*.md. Stdlib only (runs anywhere CI can
run python3). Failures:

  * a relative link whose target file does not exist;
  * a fragment link (#anchor) whose heading does not exist in the target,
    using GitHub's heading slugification;
  * unbalanced code fences;
  * ATX headings without a space after the hashes (render as plain text);
  * trailing whitespace (hard line breaks nobody intended).

External links (http/https/mailto) are not fetched.

Usage: python3 scripts/check_docs.py  (exit 0 = clean)
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})(.*)$")
BAD_HEADING_RE = re.compile(r"^#{1,6}[^#\s]")


def slugify(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_code_fences(lines):
    """Yield (lineno, line) outside fenced code blocks; count fences."""
    fences = 0
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            fences += 1
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line
    if in_fence:
        yield 0, None  # sentinel: unbalanced
    return


def anchors_of(path: Path) -> set:
    anchors = set()
    lines = path.read_text(encoding="utf-8").splitlines()
    for _, line in strip_code_fences(lines):
        if line is None:
            continue
        m = HEADING_RE.match(line)
        if m and (m.group(2).startswith(" ") or m.group(2) == ""):
            anchors.add(slugify(m.group(2)))
    return anchors


def check_file(path: Path, errors: list):
    rel = path.relative_to(REPO)
    lines = path.read_text(encoding="utf-8").splitlines()
    body = list(strip_code_fences(lines))
    if any(line is None for _, line in body):
        errors.append(f"{rel}: unbalanced code fence (```)")
        body = [(n, l) for n, l in body if l is not None]

    for lineno, line in body:
        if line.rstrip() != line:
            errors.append(f"{rel}:{lineno}: trailing whitespace")
        if BAD_HEADING_RE.match(line):
            errors.append(f"{rel}:{lineno}: ATX heading needs a space after '#'")
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, fragment = target.partition("#")
            dest = path if not file_part else (path.parent / file_part).resolve()
            if file_part and not dest.exists():
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md":
                if slugify(fragment) not in anchors_of(dest):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor -> {target}")


def main() -> int:
    docs = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]
    errors = []
    for path in docs:
        check_file(path, errors)
    for error in errors:
        print(f"error: {error}")
    print(f"check_docs: {len(docs)} files, {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
