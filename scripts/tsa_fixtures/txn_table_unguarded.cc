// Negative thread-safety fixture: MUST FAIL to compile under
//   clang++ -Wthread-safety -Werror=thread-safety-analysis
// (scripts/check_thread_safety.sh compiles it and asserts the failure).
//
// It reads TxnTable's partition map without the partition latch. If this
// file ever compiles cleanly under the analysis, the GUARDED_BY(latch) on
// TxnTable::Partition::map has been deleted or defeated — the compile-time
// lock-discipline guarantee for the transaction table is gone.
//
// Never add this file to the build; it exists only for -fsyntax-only.

#include <cstddef>

#include "txn/txn_table.h"

namespace mvstore {

struct TsaNegativeProbe {
  static std::size_t UnguardedTxnTableRead(TxnTable& table) {
    // No SpinLatchGuard on partitions_[0].latch: the analysis must reject
    // this read of the GUARDED_BY(latch) map.
    return table.partitions_[0].map.size();
  }
};

}  // namespace mvstore
