// Negative thread-safety fixture: MUST FAIL to compile under
//   clang++ -Wthread-safety -Werror=thread-safety-analysis
// (scripts/check_thread_safety.sh compiles it and asserts the failure).
//
// It reads the Logger's group-commit buffer and LSN bookkeeping without
// mutex_. If this file ever compiles cleanly under the analysis, the
// GUARDED_BY(mutex_) annotations on Logger's buffer/LSN fields have been
// deleted or defeated.
//
// Never add this file to the build; it exists only for -fsyntax-only.

#include <cstdint>

#include "log/logger.h"

namespace mvstore {

struct TsaNegativeProbe {
  static uint64_t UnguardedLoggerRead(Logger& logger) {
    // No MutexLock on logger.mutex_: both reads below must be rejected.
    uint64_t n = logger.flushed_lsn_;
    n += logger.buffer_.size();
    return n;
  }
};

}  // namespace mvstore
