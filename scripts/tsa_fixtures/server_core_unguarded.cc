// Negative thread-safety fixture: MUST FAIL to compile under
//   clang++ -Wthread-safety -Werror=thread-safety-analysis
// (scripts/check_thread_safety.sh compiles it and asserts the failure).
//
// It reads the server's session registry without sessions_mutex_. If this
// file ever compiles cleanly under the analysis, the GUARDED_BY on
// ServerCore::sessions_ has been deleted or defeated.
//
// Never add this file to the build; it exists only for -fsyntax-only.

#include <cstddef>

#include "server/server_core.h"

namespace mvstore {

struct TsaNegativeProbe {
  static std::size_t UnguardedSessionsRead(ServerCore& core) {
    // No MutexLock on core.sessions_mutex_: the read must be rejected.
    return core.sessions_.size();
  }
};

}  // namespace mvstore
