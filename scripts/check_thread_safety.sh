#!/usr/bin/env bash
# Clang thread-safety analysis gate.
#
# Positive pass: every translation unit under src/ must compile clean under
#   -Wthread-safety -Werror=thread-safety-analysis
# so a lock-discipline violation (guarded field touched without its latch,
# REQUIRES function called without the lock, double acquire, ...) is a hard
# compile error.
#
# Negative pass: every fixture in scripts/tsa_fixtures/ performs an
# unguarded access through a TsaNegativeProbe friend and MUST FAIL with a
# thread-safety diagnostic. A fixture that compiles cleanly means someone
# deleted or defeated a GUARDED_BY/REQUIRES annotation the project relies
# on — the analysis would silently stop covering that class, so this script
# treats it as a failure.
#
# The annotations expand to nothing under GCC (common/thread_annotations.h
# gates on __clang__), so this gate needs a clang++. Without one the script
# SKIPs loudly with exit 0: local GCC-only boxes stay usable, while CI's
# thread-safety job installs clang and therefore always enforces.
#
# Usage: scripts/check_thread_safety.sh
#   CLANG_CXX=clang++-18 scripts/check_thread_safety.sh   # pick a compiler

set -u

cd "$(dirname "$0")/.."

find_clang() {
  if [ -n "${CLANG_CXX:-}" ]; then
    command -v "${CLANG_CXX}" && return 0
    echo "error: CLANG_CXX='${CLANG_CXX}' not found" >&2
    return 1
  fi
  local candidate
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
                   clang++-16 clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

CXX="$(find_clang)" || {
  echo "SKIP: no clang++ found — thread-safety analysis NOT checked." >&2
  echo "      (GCC compiles the annotations away; install clang or rely" >&2
  echo "      on CI's thread-safety job for enforcement.)" >&2
  exit 0
}

FLAGS=(-std=c++20 -fsyntax-only -Isrc -I.
       -Wthread-safety -Werror=thread-safety-analysis
       -DMVSTORE_FAILPOINTS_ENABLED=1)

fail=0

echo "== positive: src/ must be clean under -Wthread-safety (${CXX})"
while IFS= read -r tu; do
  if ! out="$("${CXX}" "${FLAGS[@]}" "${tu}" 2>&1)"; then
    echo "FAIL: ${tu}"
    echo "${out}"
    fail=1
  fi
done < <(find src -name '*.cc' | sort)

echo "== negative: scripts/tsa_fixtures/ must FAIL with thread-safety errors"
for fixture in scripts/tsa_fixtures/*.cc; do
  if out="$("${CXX}" "${FLAGS[@]}" "${fixture}" 2>&1)"; then
    echo "FAIL: ${fixture} compiled cleanly — a GUARDED_BY/REQUIRES the"
    echo "      fixture exercises has been deleted or defeated."
    fail=1
  elif ! grep -q "thread-safety" <<<"${out}"; then
    echo "FAIL: ${fixture} failed for the wrong reason (not a thread-safety"
    echo "      diagnostic) — fix the fixture so it isolates the annotation:"
    echo "${out}"
    fail=1
  else
    echo "ok (rejected as intended): ${fixture}"
  fi
done

if [ "${fail}" -ne 0 ]; then
  echo "thread-safety check FAILED" >&2
  exit 1
fi
echo "thread-safety check passed"
