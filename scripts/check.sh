#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh              # everything (tier-1, what CI gates on)
#   scripts/check.sh unit         # fast suites only
#   scripts/check.sh stress       # only bank_stress_test / tatp_test
#
# Environment overrides:
#   BUILD_DIR   (default: build)
#   BUILD_TYPE  (default: Release)
#   WERROR=ON   treat warnings in src/ as errors (what CI does)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
LABEL=${1:-}
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  ${WERROR:+-DMVSTORE_WERROR="$WERROR"}
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j"$JOBS" \
  ${LABEL:+-L "$LABEL"}
