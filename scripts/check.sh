#!/usr/bin/env bash
# One-shot tier-1 verify: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh              # everything (tier-1, what CI gates on)
#   scripts/check.sh unit         # fast suites only
#   scripts/check.sh stress       # only bank_stress_test / tatp_test
#   scripts/check.sh --static     # static gates only: invariant linter,
#                                 # clang thread-safety analysis (skips
#                                 # loudly without clang), and clang-tidy
#                                 # when installed — no build, no tests
#
# Environment overrides:
#   BUILD_DIR   (default: build)
#   BUILD_TYPE  (default: Release)
#   WERROR=ON   treat warnings in src/ as errors (what CI does)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUILD_TYPE=${BUILD_TYPE:-Release}
LABEL=${1:-}
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

if [ "$LABEL" = "--static" ]; then
  echo "== invariant linter (self-test, then the tree)"
  python3 scripts/check_invariants.py --self-test
  python3 scripts/check_invariants.py

  echo "== clang thread-safety analysis"
  scripts/check_thread_safety.sh

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (.clang-tidy profile)"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' | xargs -P "$JOBS" -n 4 \
      clang-tidy -p "$BUILD_DIR" --quiet
  else
    echo "SKIP: clang-tidy not installed (CI's clang-tidy job enforces)" >&2
  fi
  echo "static checks done"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  ${WERROR:+-DMVSTORE_WERROR="$WERROR"}
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error -j"$JOBS" \
  ${LABEL:+-L "$LABEL"}
