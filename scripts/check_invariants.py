#!/usr/bin/env python3
"""Project-invariant linter for mvstore. Stdlib only; CI runs it on every PR.

Five invariants the type system cannot express:

1. epoch-guard  — a raw `Version*` may only be dereferenced lexically inside
   an `EpochGuard` scope (epoch-based reclamation is what keeps the pointer
   alive), in an allowlisted file whose protocol is documented, or on a line
   carrying an `// epoch-safe:` justification.

2. failpoints   — `MVSTORE_FAILPOINT("site")` strings and the site catalog
   in docs/RELIABILITY.md must match bidirectionally (a site in code but
   not the docs is an undocumented chaos hook; a site in the docs but not
   the code is a stale runbook). Every `repl.*` site must additionally be
   mentioned in docs/REPLICATION.md, which narrates the failover drills.

3. ownership    — hot-path types with dedicated owners (Version: per-table
   slabs; Transaction: the engine's object pool) must not be created or
   destroyed with bare new/delete outside the allowlisted owner files, or
   the pool/slab accounting silently diverges from reality.

4. tsa-optout   — every use of NO_THREAD_SAFETY_ANALYSIS (the escape hatch
   from clang's thread-safety analysis) must carry an adjacent
   `NO_THREAD_SAFETY_ANALYSIS: <protocol>` comment explaining the locking
   protocol the function actually follows and why the analysis cannot
   express it. An unexplained opt-out is an unreviewed hole in the
   compile-time lock discipline.

5. hist-catalog — the histogram names in obs::HistName()
   (src/obs/histogram.h) and the metric-catalog table in
   docs/OBSERVABILITY.md must match bidirectionally: metric names are a
   stable scrape contract, so a histogram in code but not the catalog is
   an undocumented series and a catalog row without code is a stale
   dashboard promise.

`--self-test` seeds a temporary tree with known-bad inputs and asserts each
check still catches them — deleting a check (or breaking its regex) fails CI
even when the real tree is clean.
"""

import argparse
import os
import re
import sys
import tempfile

# --- allowlists -------------------------------------------------------------

# Files whose Version* handling is safe without a lexically visible
# EpochGuard. Every entry needs a reason; new entries are a review event.
EPOCH_ALLOWLIST = {
    "src/cc/mv_engine.cc": "every public operation opens an EpochGuard at "
    "entry; private helpers run inside the caller's guard",
    "src/cc/visibility.cc": "visibility checks run under the engine's guard",
    "src/storage/ordered_index.cc": "skip-list walked under the caller's "
    "guard; unpublished nodes during insert",
    "src/sv/sv_engine.cc": "1V engine: single-version slots live as long as "
    "the table, no reclamation race",
}

# Inline justification marker for one-off sites in non-allowlisted files.
EPOCH_INLINE_MARKER = "// epoch-safe:"

# Files allowed to new/delete the pooled hot-path types.
OWNERSHIP_ALLOWLIST = {
    "src/storage/table.h": "slab owner (raw-storage heap fallback when slabs "
    "are off)",
    "src/mem/object_pool.h": "the pool itself owns construction/destruction",
}

HOT_TYPES = ("Version", "Transaction")

FAILPOINT_RE = re.compile(r'MVSTORE_FAILPOINT\("([^"]+)"\)')
CATALOG_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|")
BACKTICK_SITE_RE = re.compile(r"`(repl\.[a-z_.]+)`")


def _iter_source(root, exts=(".cc", ".h")):
    src = os.path.join(root, "src")
    for dirpath, _dirs, files in os.walk(src):
        for name in sorted(files):
            if name.endswith(exts):
                path = os.path.join(dirpath, name)
                yield os.path.relpath(path, root).replace(os.sep, "/"), path


def _read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def _strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines and
    column positions so offsets keep mapping to the original text."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n and text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


# --- check 1: EpochGuard ----------------------------------------------------

VERSION_DECL_RE = re.compile(r"\bVersion\s*\*\s*(?:const\s+)?(\w+)\b")
GUARD_RE = re.compile(r"\bEpochGuard\b")


def _guard_regions(code):
    """[(start, end)] character ranges protected by an EpochGuard: from the
    guard's position to the close of its enclosing brace block."""
    regions = []
    for m in GUARD_RE.finditer(code):
        depth = 0
        end = len(code)
        for i in range(m.start(), len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth < 0:
                    end = i
                    break
        regions.append((m.start(), end))
    return regions


def check_epoch_guard(root):
    violations = []
    for rel, path in _iter_source(root, exts=(".cc",)):
        if rel in EPOCH_ALLOWLIST:
            continue
        text = _read(path)
        code = _strip_comments_and_strings(text)
        names = set(VERSION_DECL_RE.findall(code))
        names.discard("")
        if not names:
            continue
        lines = text.splitlines()
        regions = _guard_regions(code)
        deref_re = re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(names)) + r")\s*->"
        )
        for m in deref_re.finditer(code):
            pos = m.start()
            if any(s <= pos < e for s, e in regions):
                continue
            lineno = code.count("\n", 0, pos) + 1
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            if EPOCH_INLINE_MARKER in line:
                continue
            violations.append(
                f"{rel}:{lineno}: Version* '{m.group(1)}' dereferenced outside "
                f"any EpochGuard scope (allowlist the file in "
                f"scripts/check_invariants.py with a reason, or justify the "
                f"line with '{EPOCH_INLINE_MARKER} <why>')"
            )
    return violations


# --- check 2: failpoint catalog --------------------------------------------


def _code_failpoints(root):
    sites = {}
    for rel, path in _iter_source(root):
        for m in FAILPOINT_RE.finditer(_read(path)):
            sites.setdefault(m.group(1), rel)
    return sites


def _catalog_failpoints(reliability_md):
    sites = set()
    in_catalog = False
    for line in reliability_md.splitlines():
        if line.startswith("### Site catalog"):
            in_catalog = True
            continue
        if in_catalog and line.startswith(("## ", "### ")):
            break
        if in_catalog:
            m = CATALOG_ROW_RE.match(line)
            if m and m.group(1) != "Site":
                sites.add(m.group(1))
    return sites


def check_failpoints(root):
    violations = []
    code_sites = _code_failpoints(root)
    rel_path = os.path.join(root, "docs", "RELIABILITY.md")
    repl_path = os.path.join(root, "docs", "REPLICATION.md")
    if not os.path.exists(rel_path):
        return [f"docs/RELIABILITY.md missing (failpoint catalog lives there)"]
    catalog = _catalog_failpoints(_read(rel_path))
    for site in sorted(set(code_sites) - catalog):
        violations.append(
            f"failpoint '{site}' ({code_sites[site]}) is not in the "
            f"docs/RELIABILITY.md site catalog"
        )
    for site in sorted(catalog - set(code_sites)):
        violations.append(
            f"failpoint '{site}' is in the docs/RELIABILITY.md site catalog "
            f"but no MVSTORE_FAILPOINT(\"{site}\") exists in src/"
        )
    # repl.* sites must also appear in the replication doc's drill narrative.
    repl_doc = _read(repl_path) if os.path.exists(repl_path) else ""
    repl_mentions = set(BACKTICK_SITE_RE.findall(repl_doc))
    for site in sorted(s for s in code_sites if s.startswith("repl.")):
        if site not in repl_mentions:
            violations.append(
                f"repl failpoint '{site}' is not mentioned in "
                f"docs/REPLICATION.md"
            )
    for site in sorted(repl_mentions - set(code_sites)):
        violations.append(
            f"docs/REPLICATION.md mentions failpoint '{site}' but no "
            f"MVSTORE_FAILPOINT(\"{site}\") exists in src/"
        )
    return violations


# --- check 3: ownership -----------------------------------------------------

NEW_HOT_RE = re.compile(r"\bnew\s+(" + "|".join(HOT_TYPES) + r")\b")
DELETE_CAST_RE = re.compile(
    r"\bdelete\s+(?:static_cast|reinterpret_cast)\s*<\s*("
    + "|".join(HOT_TYPES)
    + r")\s*\*\s*>"
)


def check_ownership(root):
    violations = []
    for rel, path in _iter_source(root):
        if rel in OWNERSHIP_ALLOWLIST:
            continue
        text = _read(path)
        code = _strip_comments_and_strings(text)
        # Bare delete of a pointer whose declared type in this file is a hot
        # type: deletes through a Version*/Transaction* variable.
        hot_ptrs = set()
        for t in HOT_TYPES:
            hot_ptrs.update(
                re.findall(r"\b" + t + r"\s*\*\s*(?:const\s+)?(\w+)\b", code)
            )
        patterns = [NEW_HOT_RE, DELETE_CAST_RE]
        if hot_ptrs:
            patterns.append(
                re.compile(
                    r"\bdelete\s+("
                    + "|".join(re.escape(n) for n in sorted(hot_ptrs))
                    + r")\b"
                )
            )
        for pat in patterns:
            for m in pat.finditer(code):
                lineno = code.count("\n", 0, m.start()) + 1
                violations.append(
                    f"{rel}:{lineno}: bare new/delete of a pooled hot-path "
                    f"type ('{m.group(0).strip()}') — Versions go through the "
                    f"table slab, Transactions through the object pool; if "
                    f"this file is a legitimate owner, allowlist it with a "
                    f"reason in scripts/check_invariants.py"
                )
    return violations


# --- check 4: NO_THREAD_SAFETY_ANALYSIS protocol comments -------------------

TSA_OPTOUT = "NO_THREAD_SAFETY_ANALYSIS"
TSA_OPTOUT_COMMENT = TSA_OPTOUT + ":"
# How far above the opt-out the protocol comment may sit (the attribute
# often lands on the second line of a multi-line signature).
TSA_COMMENT_LOOKBACK = 10


def check_tsa_optout(root):
    violations = []
    for rel, path in _iter_source(root):
        if rel == "src/common/thread_annotations.h":
            continue  # defines the macro
        text = _read(path)
        code = _strip_comments_and_strings(text)
        if TSA_OPTOUT not in code:
            continue
        lines = text.splitlines()
        for m in re.finditer(r"\b" + TSA_OPTOUT + r"\b", code):
            lineno = code.count("\n", 0, m.start()) + 1
            window = lines[max(0, lineno - 1 - TSA_COMMENT_LOOKBACK) : lineno]
            if not any(TSA_OPTOUT_COMMENT in ln for ln in window):
                violations.append(
                    f"{rel}:{lineno}: {TSA_OPTOUT} without an adjacent "
                    f"'{TSA_OPTOUT_COMMENT} <protocol>' comment — state the "
                    f"locking protocol the function follows and why the "
                    f"analysis cannot express it (within "
                    f"{TSA_COMMENT_LOOKBACK} lines above)"
                )
    return violations


# --- check 5: histogram metric catalog --------------------------------------

HIST_NAMES_BLOCK_RE = re.compile(
    r"static\s+const\s+char\*\s+kNames\[\]\s*=\s*\{(.*?)\};", re.S
)
HIST_NAME_RE = re.compile(r'"([a-z_]+)"')


def _code_hist_names(histogram_h):
    m = HIST_NAMES_BLOCK_RE.search(histogram_h)
    return set(HIST_NAME_RE.findall(m.group(1))) if m else set()


def _catalog_hist_names(observability_md):
    names = set()
    in_catalog = False
    for line in observability_md.splitlines():
        if line.startswith("### Latency histogram families"):
            in_catalog = True
            continue
        if in_catalog and line.startswith(("## ", "### ")):
            break
        if in_catalog:
            m = CATALOG_ROW_RE.match(line)
            if m:
                names.add(m.group(1))
    return names


def check_hist_catalog(root):
    hist_path = os.path.join(root, "src", "obs", "histogram.h")
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    if not os.path.exists(hist_path):
        return []  # nothing to cross-check (self-test trees without obs/)
    if not os.path.exists(doc_path):
        return ["docs/OBSERVABILITY.md missing (the metric catalog lives there)"]
    code_names = _code_hist_names(_read(hist_path))
    if not code_names:
        return ["src/obs/histogram.h: could not parse the HistName() kNames "
                "array (check 5 regex needs updating)"]
    catalog = _catalog_hist_names(_read(doc_path))
    violations = []
    for name in sorted(code_names - catalog):
        violations.append(
            f"histogram '{name}' (obs::HistName) is not in the "
            f"docs/OBSERVABILITY.md metric catalog"
        )
    for name in sorted(catalog - code_names):
        violations.append(
            f"docs/OBSERVABILITY.md catalogs histogram '{name}' but "
            f"obs::HistName() has no such name"
        )
    return violations


# --- self-test --------------------------------------------------------------


def _write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    """Seed a temp tree with one violation per check plus clean counterparts;
    every check must flag exactly the bad input."""
    failures = []
    with tempfile.TemporaryDirectory() as root:
        _write(
            root,
            "src/bad/deref.cc",
            "#include \"storage/version.h\"\n"
            "int f(mvstore::Version* v) { return v->payload_size; }\n",
        )
        _write(
            root,
            "src/good/deref.cc",
            "#include \"util/epoch.h\"\n"
            "int g(mvstore::EpochManager& em, mvstore::Version* v) {\n"
            "  mvstore::EpochGuard guard(em);\n"
            "  return v->payload_size;\n"
            "}\n",
        )
        _write(
            root,
            "src/good/justified.cc",
            "int h(mvstore::Version* v) {\n"
            "  return v->payload_size;  // epoch-safe: unpublished version\n"
            "}\n",
        )
        _write(
            root,
            "src/bad/hooks.cc",
            'bool a() { return MVSTORE_FAILPOINT("undocumented.site"); }\n'
            'bool b() { return MVSTORE_FAILPOINT("repl.unnarrated"); }\n'
            'bool c() { return MVSTORE_FAILPOINT("documented.site"); }\n',
        )
        _write(
            root,
            "docs/RELIABILITY.md",
            "### Site catalog\n\n"
            "| Site | Where it fires | Armed effect |\n"
            "|------|----------------|--------------|\n"
            "| `documented.site` | somewhere | something |\n"
            "| `repl.unnarrated` | somewhere | something |\n"
            "| `stale.site` | nowhere | removed long ago |\n\n"
            "## Next section\n",
        )
        _write(root, "docs/REPLICATION.md", "No sites narrated here.\n")
        _write(
            root,
            "src/bad/owner.cc",
            "void f() { Version* v = new Version(); delete v; }\n",
        )

        epoch = check_epoch_guard(root)
        if not any("src/bad/deref.cc" in v for v in epoch):
            failures.append("epoch-guard check missed the unguarded deref")
        if any("src/good/" in v for v in epoch):
            failures.append("epoch-guard check flagged a guarded/justified deref")

        fps = check_failpoints(root)
        if not any("undocumented.site" in v for v in fps):
            failures.append("failpoint check missed the undocumented site")
        if not any("stale.site" in v for v in fps):
            failures.append("failpoint check missed the stale catalog row")
        if not any("repl.unnarrated" in v and "REPLICATION" in v for v in fps):
            failures.append("failpoint check missed the unnarrated repl site")
        if any("'documented.site'" in v for v in fps):
            failures.append("failpoint check flagged a correctly documented site")

        own = check_ownership(root)
        if not any("new Version" in v for v in own):
            failures.append("ownership check missed `new Version`")
        if not any("delete v" in v for v in own):
            failures.append("ownership check missed `delete v`")

        _write(
            root,
            "src/bad/optout.h",
            "void Drain() NO_THREAD_SAFETY_ANALYSIS;\n",
        )
        _write(
            root,
            "src/good/optout.h",
            "/// NO_THREAD_SAFETY_ANALYSIS: drains after all workers joined,\n"
            "/// so the guarded queue has no concurrent accessors.\n"
            "void Drain() NO_THREAD_SAFETY_ANALYSIS;\n",
        )
        tsa = check_tsa_optout(root)
        if not any("src/bad/optout.h" in v for v in tsa):
            failures.append("tsa-optout check missed the unexplained opt-out")
        if any("src/good/optout.h" in v for v in tsa):
            failures.append("tsa-optout check flagged a documented opt-out")

        _write(
            root,
            "src/obs/histogram.h",
            "inline const char* HistName(Hist hist) {\n"
            "  static const char* kNames[] = {\n"
            '      "commit_total", "undocumented_hist",\n'
            "  };\n"
            "  return kNames[static_cast<uint32_t>(hist)];\n"
            "}\n",
        )
        _write(
            root,
            "docs/OBSERVABILITY.md",
            "### Latency histogram families\n\n"
            "| Family | Span | Sampled? |\n"
            "|--------|------|----------|\n"
            "| `commit_total` | whole commit | 1-in-32 |\n"
            "| `stale_hist` | removed long ago | no |\n\n"
            "### Counters\n",
        )
        hist = check_hist_catalog(root)
        if not any("undocumented_hist" in v for v in hist):
            failures.append("hist-catalog check missed the undocumented histogram")
        if not any("stale_hist" in v for v in hist):
            failures.append("hist-catalog check missed the stale catalog row")
        if any("'commit_total'" in v for v in hist):
            failures.append("hist-catalog check flagged a documented histogram")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("self-test passed: all seeded violations were caught")
    return 0


# --- main -------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root (default: script's parent)")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the checks catch seeded violations, then exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    violations = []
    violations += check_epoch_guard(root)
    violations += check_failpoints(root)
    violations += check_ownership(root)
    violations += check_tsa_optout(root)
    violations += check_hist_catalog(root)
    if violations:
        print(f"{len(violations)} invariant violation(s):", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("invariants ok: epoch-guard, failpoint catalog, ownership, "
          "tsa-optout, hist-catalog")
    return 0


if __name__ == "__main__":
    sys.exit(main())
