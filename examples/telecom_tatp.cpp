// Telecom application: a miniature TATP deployment (paper Section 5.3).
//
// Loads the four-table TATP schema and runs the seven-transaction mix on a
// few worker threads, printing the per-type commit/abort breakdown and a
// final referential-consistency check.
//
//   $ ./telecom_tatp [subscribers] [threads] [seconds]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timing.h"
#include "workload/tatp.h"

using namespace mvstore;

int main(int argc, char** argv) {
  uint64_t subscribers = argc > 1 ? std::stoull(argv[1]) : 10000;
  uint32_t threads = argc > 2 ? std::stoul(argv[2]) : 4;
  double seconds = argc > 3 ? std::stod(argv[3]) : 2.0;

  DatabaseOptions options;
  options.scheme = Scheme::kMultiVersionOptimistic;
  Database db(options);

  std::printf("loading TATP with %llu subscribers...\n",
              static_cast<unsigned long long>(subscribers));
  Timer load_timer;
  tatp::TatpDatabase tatp = tatp::LoadTatp(db, subscribers);
  std::printf("loaded in %.2fs\n", load_timer.ElapsedSeconds());

  const char* type_names[] = {
      "GET_SUBSCRIBER_DATA", "GET_NEW_DESTINATION",   "GET_ACCESS_DATA",
      "UPDATE_SUBSCRIBER",   "UPDATE_LOCATION",       "INSERT_CALL_FWD",
      "DELETE_CALL_FWD"};

  std::atomic<bool> stop{false};
  struct PerThread {
    uint64_t committed[7] = {0};
    uint64_t aborted[7] = {0};
  };
  std::vector<PerThread> counts(threads);
  std::vector<std::thread> pool;
  Timer timer;
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Random rng(t + 7);
      while (!stop.load(std::memory_order_relaxed)) {
        tatp::TatpTxnType type = tatp::PickTxnType(rng);
        Status s = tatp::RunTatpTxn(db, tatp, rng, type);
        if (s.ok()) {
          counts[t].committed[static_cast<int>(type)]++;
        } else {
          counts[t].aborted[static_cast<int>(type)]++;
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (auto& th : pool) th.join();
  double elapsed = timer.ElapsedSeconds();

  uint64_t total = 0;
  std::printf("%-22s %12s %10s\n", "transaction", "committed", "aborted");
  for (int type = 0; type < 7; ++type) {
    uint64_t committed = 0, aborted = 0;
    for (auto& c : counts) {
      committed += c.committed[type];
      aborted += c.aborted[type];
    }
    total += committed;
    std::printf("%-22s %12llu %10llu\n", type_names[type],
                static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted));
  }
  std::printf("throughput: %.0f transactions/sec on %u threads\n",
              total / elapsed, threads);

  bool consistent = tatp::CheckConsistency(db, tatp);
  std::printf("consistency check: %s\n", consistent ? "PASS" : "FAIL");
  return consistent ? 0 : 1;
}
