// Bank transfers: the paper's Figure 1 scenario, at scale and concurrently.
//
// Many worker threads move money between accounts while auditors take
// transactionally consistent snapshots. The invariant -- total balance never
// changes -- holds under every scheme; under the MV schemes the auditors
// never block the writers (the paper's key robustness claim).
//
//   $ ./bank_transfer [scheme] [threads]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timing.h"
#include "core/database.h"

using namespace mvstore;

struct Account {
  uint64_t id;
  int64_t balance;
};

uint64_t AccountKey(const void* p) {
  return static_cast<const Account*>(p)->id;
}

int main(int argc, char** argv) {
  Scheme scheme = Scheme::kMultiVersionOptimistic;
  if (argc > 1) {
    if (std::strcmp(argv[1], "1V") == 0) scheme = Scheme::kSingleVersion;
    if (std::strcmp(argv[1], "MV/L") == 0) {
      scheme = Scheme::kMultiVersionLocking;
    }
  }
  uint32_t threads = argc > 2 ? std::stoul(argv[2]) : 4;

  constexpr uint64_t kAccounts = 1000;
  constexpr int64_t kInitial = 100;

  DatabaseOptions options;
  options.scheme = scheme;
  Database db(options);

  TableDef def;
  def.name = "accounts";
  def.payload_size = sizeof(Account);
  def.indexes.push_back(IndexDef{&AccountKey, kAccounts, true});
  TableId accounts = db.CreateTable(def);

  for (uint64_t id = 0; id < kAccounts; ++id) {
    db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
      Account acc{id, kInitial};
      return db.Insert(t, accounts, &acc);
    });
  }
  std::printf("loaded %llu accounts under %s\n",
              static_cast<unsigned long long>(kAccounts), SchemeName(scheme));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transfers{0};
  std::atomic<uint64_t> audits{0};
  std::atomic<uint64_t> bad_audits{0};

  std::vector<std::thread> pool;
  // Transfer workers.
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Random rng(t + 1);
      while (!stop.load()) {
        uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
        int64_t amount = static_cast<int64_t>(rng.Uniform(10));
        Status s = db.RunTransaction(
            IsolationLevel::kReadCommitted,
            [&](Txn* txn) {
              Status u = db.Update(txn, accounts, 0, from, [&](void* p) {
                static_cast<Account*>(p)->balance -= amount;
              });
              if (!u.ok()) return u;
              return db.Update(txn, accounts, 0, to, [&](void* p) {
                static_cast<Account*>(p)->balance += amount;
              });
            },
            /*max_retries=*/100);
        if (s.ok()) transfers.fetch_add(1);
      }
    });
  }
  // One auditor: consistent snapshot of all balances.
  pool.emplace_back([&] {
    IsolationLevel audit_iso = scheme == Scheme::kSingleVersion
                                   ? IsolationLevel::kSerializable
                                   : IsolationLevel::kSnapshot;
    while (!stop.load()) {
      int64_t total = 0;
      Status s = db.RunTransaction(
          audit_iso,
          [&](Txn* txn) {
            total = 0;
            Account acc{};
            for (uint64_t id = 0; id < kAccounts; ++id) {
              Status rs = db.Read(txn, accounts, 0, id, &acc);
              if (!rs.ok()) return rs;
              total += acc.balance;
            }
            return Status::OK();
          },
          /*max_retries=*/100);
      if (s.ok()) {
        audits.fetch_add(1);
        if (total != static_cast<int64_t>(kAccounts) * kInitial) {
          bad_audits.fetch_add(1);
        }
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(2));
  stop.store(true);
  for (auto& th : pool) th.join();

  std::printf("transfers: %llu, audits: %llu, inconsistent audits: %llu\n",
              static_cast<unsigned long long>(transfers.load()),
              static_cast<unsigned long long>(audits.load()),
              static_cast<unsigned long long>(bad_audits.load()));
  return bad_audits.load() == 0 ? 0 : 1;
}
