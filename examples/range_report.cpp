// Ordered-index range scans: the workload class the paper's hash-only
// engines cannot serve.
//
// An order book keyed by order id carries an ordered secondary index on the
// order amount. The example runs three mini-scenarios per scheme:
//
//   1. a consistent "report": sum all orders with amount in [lo, hi] while
//      writers keep booking — the MV schemes read a stable snapshot;
//   2. a serializable scan racing a conflicting insert — someone must
//      abort (MV: the scanner at commit; 1V: the inserter times out);
//   3. an insert outside the scanned range — nobody aborts.
//
//   $ ./range_report
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "core/database.h"

using namespace mvstore;

namespace {

struct Order {
  uint64_t id;
  uint64_t amount;
};
uint64_t OrderId(const void* p) { return static_cast<const Order*>(p)->id; }
uint64_t OrderAmount(const void* p) {
  return static_cast<const Order*>(p)->amount;
}

constexpr uint64_t kOrders = 10000;

TableId CreateAndLoad(Database& db) {
  TableDef def;
  def.name = "orders";
  def.payload_size = sizeof(Order);
  def.indexes.push_back(IndexDef{&OrderId, kOrders, /*unique=*/true});
  IndexDef by_amount{&OrderAmount, kOrders, /*unique=*/false};
  by_amount.ordered = true;
  def.indexes.push_back(by_amount);
  TableId table = db.CreateTable(def);
  Random rng(42);
  for (uint64_t id = 0; id < kOrders; ++id) {
    Order order{id, rng.Uniform(100000)};
    db.RunTransaction(IsolationLevel::kReadCommitted,
                      [&](Txn* t) { return db.Insert(t, table, &order); });
  }
  return table;
}

void RunScheme(Scheme scheme) {
  DatabaseOptions options;
  options.scheme = scheme;
  Database db(options);
  TableId table = CreateAndLoad(db);

  // 1: report under write pressure.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rng(7);
    uint64_t next_id = kOrders;
    while (!stop.load(std::memory_order_relaxed)) {
      Order order{next_id++, rng.Uniform(100000)};
      db.RunTransaction(IsolationLevel::kReadCommitted,
                        [&](Txn* t) { return db.Insert(t, table, &order); });
    }
  });
  uint64_t count = 0, total = 0;
  Status report = db.RunTransaction(IsolationLevel::kSnapshot, [&](Txn* t) {
    count = total = 0;
    return db.ScanRange(t, table, 1, 25000, 75000, nullptr,
                        [&](const void* p) {
                          ++count;
                          total += static_cast<const Order*>(p)->amount;
                          return true;
                        });
  });
  stop.store(true);
  writer.join();
  std::printf("  report: %llu orders in [25000,75000], total %llu (%s)\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(total),
              report.ok() ? "ok" : report.ToString().c_str());

  // 2: serializable scan vs conflicting insert.
  Txn* scanner = db.Begin(IsolationLevel::kSerializable);
  uint64_t in_range = 0;
  db.ScanRange(scanner, table, 1, 1000, 2000, nullptr, [&](const void*) {
    ++in_range;
    return true;
  });
  Order phantom{900000, 1500};
  Status insert = db.RunTransaction(
      IsolationLevel::kReadCommitted,
      [&](Txn* t) { return db.Insert(t, table, &phantom); },
      /*max_retries=*/0);
  Status commit = db.Commit(scanner);
  std::printf("  phantom race: insert %s, scanner commit %s\n",
              insert.ok() ? "committed" : "aborted (waited out the range lock)",
              commit.ok() ? "ok" : "aborted (phantom caught at rescan)");

  // 3: insert outside the range is harmless.
  scanner = db.Begin(IsolationLevel::kSerializable);
  db.ScanRange(scanner, table, 1, 1000, 2000, nullptr,
               [](const void*) { return true; });
  Order harmless{900001, 99999};
  Status insert2 = db.RunTransaction(
      IsolationLevel::kReadCommitted,
      [&](Txn* t) { return db.Insert(t, table, &harmless); });
  Status commit2 = db.Commit(scanner);
  std::printf("  outside range: insert %s, scanner commit %s\n",
              insert2.ok() ? "ok" : "aborted", commit2.ok() ? "ok" : "aborted");
}

}  // namespace

int main() {
  for (Scheme scheme : {Scheme::kSingleVersion, Scheme::kMultiVersionLocking,
                        Scheme::kMultiVersionOptimistic}) {
    std::printf("%s:\n", SchemeName(scheme));
    RunScheme(scheme);
  }
  return 0;
}
