// Operational reporting on a live OLTP system (paper Section 5.2.2).
//
// Short update transactions run concurrently with one long, serializable,
// read-only "report" that scans 10% of the table. Run it under 1V and then
// under MV/O to see the paper's headline effect: the single-version engine's
// update throughput collapses while the report runs; the multiversion
// engines barely notice.
//
//   $ ./reporting_mix
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timing.h"
#include "core/database.h"
#include "workload/homogeneous.h"

using namespace mvstore;

namespace {

/// Update throughput over `seconds`, with or without a concurrent reporter.
double MeasureUpdates(Database& db, TableId table, uint64_t rows,
                      uint32_t update_threads, bool with_reporter,
                      double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> reports{0};
  std::vector<std::thread> pool;

  for (uint32_t t = 0; t < update_threads; ++t) {
    pool.emplace_back([&, t] {
      Random rng(t + 13);
      while (!stop.load(std::memory_order_relaxed)) {
        Status s = workload::RunUpdateTxn(db, table, rng, rows, 10, 2,
                                          IsolationLevel::kReadCommitted);
        if (s.ok()) committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  if (with_reporter) {
    pool.emplace_back([&] {
      Random rng(99);
      uint64_t checksum = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (workload::RunLongReadTxn(db, table, rng, rows, rows / 10,
                                     &checksum)
                .ok()) {
          reports.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true);
  for (auto& th : pool) th.join();
  return committed.load() / seconds;
}

}  // namespace

int main() {
  constexpr uint64_t kRows = 100000;
  const uint32_t update_threads = 3;

  std::printf("%-6s %18s %18s %10s\n", "scheme", "updates/s (alone)",
              "updates/s (+report)", "drop");
  for (Scheme scheme : {Scheme::kSingleVersion, Scheme::kMultiVersionLocking,
                        Scheme::kMultiVersionOptimistic}) {
    DatabaseOptions options;
    options.scheme = scheme;
    Database db(options);
    TableId table = workload::CreateAndLoadRows(db, kRows);

    double alone = MeasureUpdates(db, table, kRows, update_threads,
                                  /*with_reporter=*/false, 1.0);
    double with_report = MeasureUpdates(db, table, kRows, update_threads,
                                        /*with_reporter=*/true, 1.0);
    double drop = alone > 0 ? 100.0 * (alone - with_report) / alone : 0;
    std::printf("%-6s %18.0f %18.0f %9.1f%%\n", SchemeName(scheme), alone,
                with_report, drop);
  }
  std::printf("\nExpected shape (paper Figure 8): the 1V drop is severe"
              " (~75%% at paper scale); the MV drops are small.\n");
  return 0;
}
