// Quickstart: create a table, run transactions under each concurrency
// control scheme, and inspect engine statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "core/database.h"

using namespace mvstore;

struct Item {
  uint64_t sku;       // primary key
  uint64_t quantity;
  uint64_t price_cents;
};

uint64_t ItemKey(const void* payload) {
  return static_cast<const Item*>(payload)->sku;
}

int main() {
  for (Scheme scheme : {Scheme::kSingleVersion, Scheme::kMultiVersionLocking,
                        Scheme::kMultiVersionOptimistic}) {
    std::printf("=== scheme %s ===\n", SchemeName(scheme));

    DatabaseOptions options;
    options.scheme = scheme;
    Database db(options);

    // A table needs a payload size and at least one (primary) hash index.
    TableDef def;
    def.name = "inventory";
    def.payload_size = sizeof(Item);
    def.indexes.push_back(IndexDef{&ItemKey, /*bucket_count=*/1024,
                                   /*unique=*/true});
    TableId inventory = db.CreateTable(def);

    // Insert a few items in one transaction.
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
    for (uint64_t sku = 1; sku <= 3; ++sku) {
      Item item{sku, 10 * sku, 99 * sku};
      Status s = db.Insert(txn, inventory, &item);
      if (!s.ok()) {
        std::printf("insert failed: %s\n", s.ToString().c_str());
        db.Abort(txn);
        return 1;
      }
    }
    if (!db.Commit(txn).ok()) return 1;

    // Read-modify-write with automatic retry on aborts.
    Status s = db.RunTransaction(
        IsolationLevel::kSerializable, [&](Txn* t) {
          Item item{};
          Status rs = t != nullptr ? db.Read(t, inventory, 0, 2, &item)
                                   : Status::Internal();
          if (!rs.ok()) return rs;
          return db.Update(t, inventory, 0, 2, [](void* p) {
            static_cast<Item*>(p)->quantity -= 1;  // sell one unit
          });
        });
    std::printf("sell txn: %s\n", s.ToString().c_str());

    // Point read.
    txn = db.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    Item item{};
    if (db.Read(txn, inventory, 0, 2, &item).ok()) {
      std::printf("sku 2: quantity=%llu price=%llu\n",
                  static_cast<unsigned long long>(item.quantity),
                  static_cast<unsigned long long>(item.price_cents));
    }
    db.Commit(txn);

    // Deletes.
    s = db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
      return db.Delete(t, inventory, 0, 3);
    });
    std::printf("delete txn: %s\n", s.ToString().c_str());

    std::printf("committed=%llu aborted=%llu\n\n",
                static_cast<unsigned long long>(
                    db.stats().Get(Stat::kTxnCommitted)),
                static_cast<unsigned long long>(
                    db.stats().Get(Stat::kTxnAborted)));
  }
  return 0;
}
